"""The trace-driven access-network simulator.

The simulator advances in (adaptively sized) time steps.  During every step
it admits newly arrived flows, runs the aggregation logic (BH2 terminal
decisions or the centralised optimal), shares each online gateway's
backhaul among its flows, advances the gateway Sleep-on-Idle state
machines, re-terminates lines through the HDF switches, and charges energy
to every device category.

The kernel is event-aware and O(changes) per step where the seed kernel was
O(devices) per step:

* gateway state machines live in a
  :class:`~repro.access.gateway_array.GatewayArray` (state codes, wake
  deadlines, sliding-window traffic counters in parallel arrays) whose
  per-step work is a couple of scalar deadline comparisons,
* flow service uses the incremental cached rates of
  :class:`~repro.flows.scheduler.FlowScheduler` — rates are recomputed only
  for gateways whose flow set or power state changed,
* energy is charged per *constant-power segment* instead of per step,
  DSLAM re-wiring runs only when some gateway changed state, and
* — the stepper extension — steps *stretch* over runs of the step grid that
  provably contain no event (flow arrival or completion, BH2 decision
  epoch, optimal solve, metric sample, or Sleep-on-Idle transition).

The result reproduces the seed kernel's per-step trajectory exactly (same
transitions at the same grid instants, same traffic samples, same RNG
draws, bit-identical flow service); the preserved seed kernel in
:mod:`repro.simulation.reference_kernel` is the oracle the equivalence
tests compare against.
"""

from __future__ import annotations

import gc
from bisect import bisect_right
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from math import inf, isfinite
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.access.dslam import Dslam, SwitchingMode
from repro.access.gateway_array import (
    GatewayArray,
    GatewayView,
    STATE_ACTIVE,
    STATE_SLEEPING,
    STATE_WAKING,
)
from repro.access.soi import SoIConfig
from repro.core.bh2 import BH2Terminal, GatewayObservationArray
from repro.core.optimal import AggregationProblem, GreedyAggregationSolver
from repro.core.schemes import AggregationKind, SchemeConfig, SwitchingKind
from repro.fleet.churn import EMPTY_TIMELINE
from repro.fleet.profile import HOMOGENEOUS
from repro.flows.flow import ActiveFlow, FlowRecord
from repro.flows.scheduler import FlowScheduler
from repro.power.energy import EnergyAccumulator, EnergyBreakdown
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL
from repro.topology.scenario import DslamConfig, Scenario
from repro.traces.models import Flow
from repro.wattopt.cost import WattCostModel
from repro.wattopt.solver import WattGreedyAggregationSolver
from repro.wireless.channel import WirelessChannel


class LazyFlowRecords(_SequenceABC):
    """List-like view that materialises flow records on first access.

    A scheme comparison keeps ``runs_per_scheme`` results per scheme but
    reads per-flow records only from the first run, so building hundreds of
    thousands of :class:`FlowRecord` tuples eagerly per run is wasted work.
    """

    __slots__ = ("_factory", "_records")

    def __init__(self, factory):
        self._factory = factory
        self._records: Optional[List[FlowRecord]] = None

    def _materialise(self) -> List[FlowRecord]:
        records = self._records
        if records is None:
            records = self._factory()
            self._records = records
            self._factory = None
        return records

    def __iter__(self):
        return iter(self._materialise())

    def __len__(self) -> int:
        return len(self._materialise())

    def __getitem__(self, index):
        return self._materialise()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyFlowRecords):
            other = other._materialise()
        return self._materialise() == other

    def __reduce__(self):
        # Pickles as a plain list (materialised where the pickling happens —
        # inside the worker process for parallel runs).
        return (list, (self._materialise(),))

    def __repr__(self) -> str:
        return repr(self._materialise())


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    scheme_name: str
    duration: float
    num_gateways: int
    num_line_cards: int
    sample_times: np.ndarray
    online_gateways: np.ndarray
    waking_gateways: np.ndarray
    online_modems: np.ndarray
    online_line_cards: np.ndarray
    energy: EnergyBreakdown
    energy_series_times: np.ndarray
    energy_series_total_j: np.ndarray
    energy_series_isp_j: np.ndarray
    flow_records: List[FlowRecord]
    gateway_online_seconds: Dict[int, float]
    baseline_power_w: float
    baseline_isp_power_w: float
    #: Number of kernel iterations the run took (stretched steps count once).
    steps_taken: int = 0
    #: Energy charged to gateways of each fleet generation (joules).  With
    #: the homogeneous default fleet this holds one entry for all gateways.
    generation_energy_j: Dict[str, float] = field(default_factory=dict)
    #: Number of deployed gateways per fleet generation.
    generation_counts: Dict[str, int] = field(default_factory=dict)
    #: Flows lost to churn: cancelled in flight (departing gateway or
    #: unsubscribing client with no rescue target) or unroutable at
    #: admission because no reachable gateway was in service.
    dropped_flows: int = 0
    #: Trace arrivals never admitted because their client was out of
    #: service (unsubscribed, or not yet subscribed) at arrival time.
    suppressed_arrivals: int = 0
    #: Kernel event counters (plain integers maintained at the rare event
    #: sites whether or not anyone observes them; the obs layer reads
    #: them post-run, so they cost nothing extra on the hot path).
    solver_invocations: int = 0
    bh2_rounds: int = 0
    bh2_decisions: int = 0
    rate_recomputes: int = 0
    rate_cache_hits: int = 0

    # ------------------------------------------------------------------
    @property
    def sample_interval_s(self) -> float:
        """Spacing of the metric samples."""
        if len(self.sample_times) > 1:
            return float(self.sample_times[1] - self.sample_times[0])
        return self.duration

    def savings_timeseries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Energy savings vs. the no-sleep baseline per interval (Fig. 6).

        Returns ``(times, percent_savings)``.
        """
        interval = np.diff(
            np.append(self.energy_series_times, self.energy_series_times[-1] + self._interval())
        ) if len(self.energy_series_times) else np.array([])
        baseline_j = self.baseline_power_w * interval
        with np.errstate(divide="ignore", invalid="ignore"):
            savings = 100.0 * (1.0 - self.energy_series_total_j / baseline_j)
        return self.energy_series_times, savings

    def isp_share_of_savings_timeseries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Share of the per-interval savings contributed by the ISP side (Fig. 8)."""
        interval = self._interval()
        baseline_total = self.baseline_power_w * interval
        baseline_isp = self.baseline_isp_power_w * interval
        saved_total = baseline_total - self.energy_series_total_j
        saved_isp = baseline_isp - self.energy_series_isp_j
        share = np.zeros_like(saved_total)
        positive = saved_total > 1e-9
        share[positive] = 100.0 * np.clip(saved_isp[positive] / saved_total[positive], 0.0, 1.0)
        return self.energy_series_times, share

    def mean_savings(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average energy savings (fraction) over a time window."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.energy_series_times >= t_start) & (self.energy_series_times < t_end)
        if not mask.any():
            return 0.0
        consumed = float(self.energy_series_total_j[mask].sum())
        baseline = self.baseline_power_w * self._interval() * int(mask.sum())
        return 1.0 - consumed / baseline if baseline > 0 else 0.0

    def mean_isp_share_of_savings(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average fraction of the savings contributed by the ISP side."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.energy_series_times >= t_start) & (self.energy_series_times < t_end)
        if not mask.any():
            return 0.0
        n = int(mask.sum())
        baseline_total = self.baseline_power_w * self._interval() * n
        baseline_isp = self.baseline_isp_power_w * self._interval() * n
        saved_total = baseline_total - float(self.energy_series_total_j[mask].sum())
        saved_isp = baseline_isp - float(self.energy_series_isp_j[mask].sum())
        if saved_total <= 0:
            return 0.0
        return max(0.0, min(1.0, saved_isp / saved_total))

    def mean_online_gateways(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average number of powered gateways over a time window (Fig. 7)."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.sample_times >= t_start) & (self.sample_times < t_end)
        if not mask.any():
            return 0.0
        return float(self.online_gateways[mask].mean())

    def mean_online_line_cards(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average number of powered line cards over a time window (Sec. 5.2.3)."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.sample_times >= t_start) & (self.sample_times < t_end)
        if not mask.any():
            return 0.0
        return float(self.online_line_cards[mask].mean())

    def flow_durations(self) -> Dict[int, float]:
        """Completion time of every finished flow, keyed by flow id."""
        return {r.flow_id: r.duration_s for r in self.flow_records}

    def _interval(self) -> float:
        if len(self.energy_series_times) > 1:
            return float(self.energy_series_times[1] - self.energy_series_times[0])
        return self.duration


class AccessNetworkSimulator:
    """Simulates one scheme over one scenario."""

    #: Largest time step taken while the network is completely idle.
    MAX_IDLE_SKIP_S = 30.0

    def __init__(
        self,
        scenario: Scenario,
        scheme: SchemeConfig,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
        step_s: float = 1.0,
        sample_interval_s: float = 60.0,
        seed: int = 0,
        baseline_durations: Optional[Dict[int, float]] = None,
        tracer=None,
    ):
        if step_s <= 0 or sample_interval_s <= 0:
            raise ValueError("step_s and sample_interval_s must be positive")
        self.scenario = scenario
        self.scheme = scheme
        self.power_model = power_model
        self.step_s = step_s
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.baseline_durations = baseline_durations or {}
        #: Optional :class:`~repro.obs.tracer.SimTracer`.  Every emit site
        #: guards on ``is not None`` (hoisted out of hot loops), so with no
        #: tracer attached the kernel does zero tracing work; with one
        #: attached it only *reads* state — results stay bit-identical.
        self.tracer = tracer
        self._rng = np.random.default_rng(seed)

        # --- devices ---------------------------------------------------
        soi = scheme.soi
        if scheme.idealized_transitions:
            soi = SoIConfig(idle_timeout_s=0.0, wake_up_time_s=0.0)

        # --- fleet mix & churn timeline --------------------------------
        fleet = scenario.fleet if scenario.fleet is not None else HOMOGENEOUS
        churn = scenario.churn if scenario.churn is not None else EMPTY_TIMELINE
        self.fleet = fleet
        # The homogeneous fast path (counts × the power model's gateway
        # device) is kept bit-identical to the seed kernel; only an
        # explicitly attached non-uniform fleet switches to per-gateway
        # power arrays.  A custom power model without a fleet profile stays
        # homogeneous in that model's own gateway device.
        self._fleet_hetero = (
            scenario.fleet is not None and not fleet.is_uniform(power_model.gateway)
        )
        power_arrays = None
        wake_times = None
        gen_assignment = None
        if self._fleet_hetero:
            self._generation_names = fleet.generation_names
            gen_assignment, active_w, sleep_w, wake_w, wake_time = fleet.device_arrays(
                scenario.num_gateways, soi.wake_up_time_s
            )
            power_arrays = (active_w, sleep_w, wake_w)
            # The idealised optimal wakes instantly whatever the hardware.
            if not scheme.idealized_transitions:
                wake_times = wake_time
            self._baseline_user_w = float(sum(active_w))
            self._generation_counts = {
                name: sum(1 for g in gen_assignment if g == index)
                for index, name in enumerate(self._generation_names)
            }
        else:
            base_name = (
                fleet.generation_names[0] if scenario.fleet is not None else "default"
            )
            self._generation_names = [base_name]
            self._baseline_user_w = scenario.num_gateways * power_model.gateway.active_w
            self._generation_counts = {base_name: scenario.num_gateways}

        self._churn_actions = churn.compile(scenario.num_gateways)
        self._churn_index = 0
        self._next_churn_at = (
            self._churn_actions[0].at_s if self._churn_actions else inf
        )
        absent_gateways, absent_clients = churn.initially_absent()
        self._clients_out: Set[int] = set(absent_clients)
        self._has_gateway_churn = churn.has_gateway_churn()
        self._dropped_flows = 0
        self._suppressed_arrivals = 0

        self.gateway_array = GatewayArray(
            num_gateways=scenario.num_gateways,
            backhaul_bps=scenario.wireless.backhaul_bps,
            soi=soi,
            sleep_enabled=scheme.sleep_enabled,
            load_window_s=scheme.bh2.load_window_s,
            initially_sleeping=scheme.sleep_enabled,
            # Only schemes that observe gateway load need the sliding-window
            # traffic samples (BH2 decisions, optimal re-routing).
            track_load=scheme.aggregation is not AggregationKind.NONE,
            power_w=power_arrays,
            wake_time_s=wake_times,
            generation=gen_assignment,
            num_generations=len(self._generation_names),
            out_of_service=absent_gateways,
        )
        #: Gateway-compatible per-device views (API compatibility).
        self.gateways: Dict[int, GatewayView] = self.gateway_array.views()
        if tracer is not None:
            # Every state change funnels through _change_state, which
            # appends to this log only while it is a list — O(transitions)
            # with a tracer, a single None check per transition without.
            self.gateway_array.transition_log = []
        #: Tracer-gated energy-segment ledger: one ``(start, end, counts)``
        #: entry per charged constant-power segment, where ``counts`` holds
        #: per-generation ``(active, waking, sleeping-in-service)`` device
        #: counts of the exact state the segment was charged with.  None
        #: (and zero cost) without a tracer; :mod:`repro.obs.explain`
        #: consumes it to attribute kWh deltas against the no-sleep twin.
        self.energy_segments: Optional[List[tuple]] = (
            [] if tracer is not None else None
        )
        self._energy_run_counts: Optional[tuple] = None
        self.dslam = Dslam(
            config=self._dslam_config(),
            line_ports=dict(scenario.gateway_port),
        )
        self.channel = WirelessChannel(
            home_capacity_bps=scenario.wireless.home_capacity_bps,
            neighbour_capacity_bps=scenario.wireless.neighbour_capacity_bps,
            seed=seed,
        )
        self.scheduler = FlowScheduler(backhaul_bps=scenario.wireless.backhaul_bps)

        # --- watt-aware aggregation (repro.wattopt) ---------------------
        # Only a watt-aware scheme over an actually heterogeneous fleet
        # builds a cost model: on the homogeneous default every marginal
        # watt is equal, and skipping the machinery entirely keeps the
        # watt schemes bit-identical to their count-minimising twins.
        self._watt_cost_model: Optional[WattCostModel] = None
        if scheme.watt_aware and self._fleet_hetero:
            self._watt_cost_model = WattCostModel.from_fleet(
                fleet, scenario.num_gateways, power_model
            )
        watt_bias = (
            self._watt_cost_model.bias()
            if self._watt_cost_model is not None
            and scheme.aggregation is AggregationKind.BH2
            else None
        )

        # --- per-client routing state -----------------------------------
        self.selected_gateway: Dict[int, int] = dict(scenario.trace.home_gateway)
        self.fallback_gateway: Dict[int, Optional[int]] = {c: None for c in self.selected_gateway}
        self.terminals: Dict[int, BH2Terminal] = {}
        if scheme.aggregation is AggregationKind.BH2:
            for client, home in scenario.trace.home_gateway.items():
                self.terminals[client] = BH2Terminal(
                    client_id=client,
                    home_gateway=home,
                    reachable_gateways=scenario.topology.reachable[client],
                    config=scheme.bh2,
                    rng=np.random.default_rng(self._rng.integers(2**31 - 1)),
                    watt_bias=watt_bias,
                )
        self._terminal_list: List[BH2Terminal] = list(self.terminals.values())
        self._decision_at = np.array(
            [t._next_decision_at for t in self._terminal_list], dtype=float
        )
        #: Lazy-deletion heap over (next decision instant, terminal index);
        #: stale entries are skipped when their time no longer matches
        #: ``_decision_at`` (the source of truth).
        self._decision_heap: List[Tuple[float, int]] = [
            (t._next_decision_at, i) for i, t in enumerate(self._terminal_list)
        ]
        heapify(self._decision_heap)
        self._min_decision_at = self._decision_heap[0][0] if self._decision_heap else inf
        self._obs_view = GatewayObservationArray(scenario.num_gateways)
        if (
            self._watt_cost_model is not None
            and scheme.aggregation is AggregationKind.OPTIMAL
        ):
            self._optimal_solver: GreedyAggregationSolver = WattGreedyAggregationSolver(
                self._watt_cost_model
            )
        else:
            self._optimal_solver = GreedyAggregationSolver()
        self._next_optimal_at = 0.0
        #: Gateways the last optimal solve decided to keep online (they stay
        #: powered until the next solve, even if they carry only backup load).
        self._optimal_online: Set[int] = set()

        # --- trace -------------------------------------------------------
        self._arrivals: List[Flow] = scenario.trace.all_flows()
        self._arrival_times: List[float] = [f.start_time for f in self._arrivals]
        self._arrival_index = 0
        self._upcoming_demand: Dict[int, Dict[int, float]] = {}
        if scheme.aggregation is AggregationKind.OPTIMAL:
            self._upcoming_demand = self._precompute_period_demand()

        # --- accounting ---------------------------------------------------
        self.energy = EnergyAccumulator(
            interval_seconds=sample_interval_s, horizon=scenario.trace.duration
        )
        self._samples: List[Tuple[float, int, int, int, int]] = []
        self.steps_taken = 0
        self._solver_invocations = 0
        self._bh2_rounds = 0
        self._bh2_decisions = 0

        # --- caches -------------------------------------------------------
        self._home_gateway = scenario.trace.home_gateway
        self._simple_routing = scheme.aggregation is AggregationKind.NONE
        self._home_capacity: Dict[int, float] = {
            client: self.channel.capacity(client, home, True)
            for client, home in self._home_gateway.items()
        }
        #: Delay between a gateway draining and its idle timeout becoming an
        #: event the stepper must stop for (inf when gateways never sleep).
        self._sleep_guard_s = soi.idle_timeout_s if scheme.sleep_enabled else inf
        #: Upper bound on the grid steps a stretch may cover (a metric sample
        #: always lands within one sample interval).
        self._max_stretch = max(1, int(sample_interval_s / step_s) + 2)
        self._cards_on = len(self.dslam.online_cards(self.gateway_array.not_sleeping_ids()))
        self._dslam_version = self.gateway_array.version
        self._online_set: Set[int] = set(self.gateway_array.online_ids())
        self._online_version = self.gateway_array.version
        self._obs_flags_version = -1
        self._optimal_wireless_cache: Optional[Dict[Tuple[int, int], float]] = None
        self._optimal_capacities_cache: Optional[Dict[int, float]] = None
        #: Pending energy segment: [start, end, active, waking, cards_on].
        self._energy_run: Optional[list] = None

    # ------------------------------------------------------------------
    def _dslam_config(self) -> DslamConfig:
        base = self.scenario.dslam
        if self.scheme.switching is SwitchingKind.NONE:
            return base.with_switch(None, full=False)
        if self.scheme.switching is SwitchingKind.FULL:
            return base.with_switch(None, full=True)
        return base.with_switch(base.switch_size or 4, full=False)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the simulation and return the collected metrics."""
        # The kernel allocates hundreds of thousands of small, cycle-free
        # objects (flows, records, samples); generational GC scans are pure
        # overhead here (~15-40% of the run), so pause collection.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, until: Optional[float]) -> SimulationResult:
        horizon = self.scenario.trace.duration if until is None else min(
            until, self.scenario.trace.duration
        )
        gateway_array = self.gateway_array
        scheduler = self.scheduler
        is_bh2 = self.scheme.aggregation is AggregationKind.BH2
        is_optimal = self.scheme.aggregation is AggregationKind.OPTIMAL
        step_s = self.step_s
        sample_interval_s = self.sample_interval_s
        optimal_period_s = self.scheme.optimal_period_s
        track_load = gateway_array.track_load
        sample_times = gateway_array._sample_times
        sample_bits = gateway_array._sample_bits
        bits_served = gateway_array.bits_served
        last_traffic = gateway_array.last_traffic_at
        record_sample = self._record_sample
        next_dt = self._next_dt
        admit_arrivals = self._admit_arrivals
        plan_stretch = self._plan_stretch
        hetero = self._fleet_hetero
        tracer = self.tracer
        single: List[float] = [0.0]
        steps = 0
        now = 0.0
        next_sample = 0.0
        while now < horizon:
            if now >= next_sample:
                record_sample(now)
                next_sample += sample_interval_s
            # Churn events fire at their exact instants, before this
            # iteration's admissions and aggregation decisions (an event
            # landing on a BH2 decision epoch is seen by that decision).
            if now >= self._next_churn_at:
                self._apply_churn(now)
            # Inlined _next_dt active path (the idle path stays a helper).
            self._now_hint = now
            if scheduler._n_active > 0:
                leftover = horizon - now
                dt = step_s if step_s < leftover else leftover
                next_churn = self._next_churn_at
                if next_churn < now + dt:
                    # Land exactly on the churn instant, even mid-activity.
                    dt = next_churn - now
                    stretchable = False
                else:
                    stretchable = dt == step_s
            else:
                dt = next_dt(now, next_sample, horizon)
                stretchable = False
            admit_arrivals(now)
            if is_bh2:
                if now >= self._min_decision_at:
                    self._run_bh2_decisions(now)
            elif is_optimal and now >= self._next_optimal_at:
                self._run_optimal(now)
                self._next_optimal_at += optimal_period_s

            # ---- plan the step (possibly a stretched run of grid steps)
            has_active = scheduler._n_active > 0
            if stretchable and has_active:
                grid = plan_stretch(now, next_sample, horizon)
            else:
                grid = None
            if grid is None:
                k = 1
                end = now + dt
                single[0] = end
                grid = single
            else:
                k = len(grid)
                end = grid[-1]
                if tracer is not None and k > 1:
                    # Stretch-segment boundary: k event-free grid steps
                    # covered in one kernel iteration.
                    tracer.span(
                        "kernel.stretch", now, end, cat="kernel", steps=k
                    )

            # ---- serve flows at the cached constant rates
            if k > 1 and gateway_array.version != self._dslam_version:
                # Intermediate grid steps re-run the DSLAM packing with the
                # loop-top state (exactly as the seed does once per step).
                self._sync_dslam()
            pre_active = gateway_array.active_count
            pre_waking = gateway_array.waking_count
            pre_cards = self._cards_on
            pre_power = gateway_array.power_snapshot() if hetero else None
            if has_active:
                scheduler.ensure_rates(now, self._current_online_set())
                if k == 1:
                    totals, _completed = scheduler.serve_single(now, end, dt)
                    if totals:
                        for gateway_id, bits in totals.items():
                            if bits > 0:
                                bits_served[gateway_id] += bits
                                last_traffic[gateway_id] = end
                                if track_load:
                                    sample_times[gateway_id].append(end)
                                    sample_bits[gateway_id].append(bits)
                else:
                    served_steps, _completed = scheduler.serve(now, step_s, grid)
                    gateway_array.record_step_totals(grid, served_steps)

            # ---- advance gateway state machines, rewire, charge energy
            gateway_array.step_to(
                end,
                scheduler._groups,
                self._optimal_online if is_optimal else (),
            )
            if gateway_array.version != self._dslam_version:
                self._sync_dslam()
            post_active = gateway_array.active_count
            post_waking = gateway_array.waking_count
            if hetero:
                # Per-gateway power: segments carry per-generation power
                # sums instead of device counts.
                post_power = gateway_array.power_snapshot()
                if k == 1 or (
                    post_active == pre_active
                    and post_waking == pre_waking
                    and self._cards_on == pre_cards
                    and post_power == pre_power
                ):
                    self._accumulate_energy_het(
                        now, end, post_power, post_active + post_waking, self._cards_on
                    )
                else:
                    second_last = grid[-2]
                    self._accumulate_energy_het(
                        now, second_last, pre_power, pre_active + pre_waking, pre_cards
                    )
                    self._accumulate_energy_het(
                        second_last, end, post_power, post_active + post_waking, self._cards_on
                    )
            elif k == 1 or (
                post_active == pre_active
                and post_waking == pre_waking
                and self._cards_on == pre_cards
            ):
                # Inlined copy of _accumulate_energy's segment-extend check
                # (hot path: most steps just extend the open segment); keep
                # the two in sync if the segment fields ever change.
                run_segment = self._energy_run
                if (
                    run_segment is not None
                    and run_segment[1] == now
                    and run_segment[2] == post_active
                    and run_segment[3] == post_waking
                    and run_segment[4] == self._cards_on
                ):
                    run_segment[1] = end
                else:
                    self._accumulate_energy(now, end, post_active, post_waking, self._cards_on)
            else:
                # Transitions happen only at the end of the final grid step,
                # so the earlier steps are charged with the pre-transition
                # state and the final one with the post-transition state
                # (the seed charges each step with its end-of-step state).
                second_last = grid[-2]
                self._accumulate_energy(now, second_last, pre_active, pre_waking, pre_cards)
                self._accumulate_energy(second_last, end, post_active, post_waking, self._cards_on)

            now = end
            steps += 1
        self.steps_taken = steps
        self._flush_energy()
        # The seed accrues state time through the final (possibly
        # horizon-overshooting) step, so flush at the actual end instant.
        self.gateway_array.flush_statistics(now)
        self._record_sample(min(now, horizon))
        return self._build_result(horizon)

    # ------------------------------------------------------------------
    # Flow admission and routing
    # ------------------------------------------------------------------
    def _admit_arrivals(self, now: float) -> None:
        index = self._arrival_index
        times = self._arrival_times
        count = len(times)
        if index >= count or times[index] > now:
            return
        arrivals = self._arrivals
        scheduler = self.scheduler
        # Admission bookkeeping is inlined (the scheduler's admit() contract,
        # minus the per-call overhead): append to the gateway group, mark the
        # gateway's rates dirty, count the flow.
        groups = scheduler._groups
        dirty = scheduler._dirty
        admit_counter = scheduler._admit_counter
        admitted = 0
        gateway_array = self.gateway_array
        state = gateway_array.state
        last_traffic = gateway_array.last_traffic_at
        home_map = self._home_gateway
        home_capacity = self._home_capacity
        capacity_cache = self.channel._cache
        capacity_of = self.channel.capacity
        simple = self._simple_routing
        selected_map = self.selected_gateway
        fallback_map = self.fallback_gateway
        clients_out = self._clients_out
        check_service = self._has_gateway_churn
        in_service = gateway_array.in_service
        stop = bisect_right(times, now, index)
        for i in range(index, stop):
            flow = arrivals[i]
            client = flow.client_id
            if clients_out and client in clients_out:
                # The subscriber is not (or not yet) part of the deployment.
                self._suppressed_arrivals += 1
                continue
            if simple:
                # Without aggregation every flow goes through the home gateway.
                gateway_id = home_map[client]
                capacity = home_capacity[client]
            else:
                selected = selected_map[client]
                if state[selected] == STATE_ACTIVE:
                    # Inlined fast path of _routing_gateway: the selected
                    # gateway is online, route straight through it.
                    fallback_map[client] = None
                    gateway_id = selected
                else:
                    gateway_id = self._routing_gateway(client, now)
                if gateway_id == home_map[client]:
                    capacity = home_capacity[client]
                else:
                    capacity = capacity_cache.get((client, gateway_id))
                    if capacity is None:
                        capacity = capacity_of(client, gateway_id, False)
            if check_service and not in_service[gateway_id]:
                # Chosen gateway is decommissioned/failed/undeployed:
                # rescue onto an in-service gateway or drop the flow.
                rescued = self._rescue_gateway(client)
                if rescued is None:
                    self._dropped_flows += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "flow.drop", now, cat="churn",
                            client=client, gateway=gateway_id,
                        )
                    continue
                if self.tracer is not None:
                    self.tracer.event(
                        "flow.rescue", now, cat="churn",
                        client=client, from_gateway=gateway_id,
                        to_gateway=rescued,
                    )
                gateway_id = rescued
                capacity = self._capacity_for(client, gateway_id)
            active = ActiveFlow(flow, gateway_id, capacity)
            active.admission_index = admit_counter + admitted
            group = groups.get(gateway_id)
            if group is None:
                groups[gateway_id] = [active]
            else:
                group.append(active)
            dirty.add(gateway_id)
            admitted += 1
            if state[gateway_id] == STATE_SLEEPING:
                gateway_array.request_wake(gateway_id, now)
            if now > last_traffic[gateway_id]:
                last_traffic[gateway_id] = now
        scheduler._n_active += admitted
        scheduler._admit_counter = admit_counter + admitted
        self._arrival_index = stop

    def _routing_gateway(self, client: int, now: float) -> int:
        """Which gateway a *new* flow of ``client`` should be routed through."""
        home = self._home_gateway[client]
        selected = self.selected_gateway.get(client, home)
        state = self.gateway_array.state
        if state[selected] == STATE_ACTIVE:
            self.fallback_gateway[client] = None
            return selected
        if selected == home:
            # Home gateway is asleep or waking: wake it and wait.
            return home
        if state[selected] == STATE_WAKING:
            # We are waiting for a remote gateway: keep traffic on the
            # fallback (usually the previous gateway) while it becomes
            # operational, otherwise wait.
            fallback = self.fallback_gateway.get(client)
            if fallback is not None and state[fallback] == STATE_ACTIVE:
                return fallback
            return selected
        # The selected remote gateway went to sleep.  A terminal can only
        # wake its own home gateway, so return home.
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            alternative = self._best_online_gateway(client)
            if alternative is not None:
                self.selected_gateway[client] = alternative
                return alternative
        self.selected_gateway[client] = home
        self.fallback_gateway[client] = None
        return home

    def _best_online_gateway(self, client: int) -> Optional[int]:
        """Least-loaded online gateway reachable by ``client`` (optimal scheme)."""
        state = self.gateway_array.state
        candidates = [
            g
            for g in self.scenario.topology.reachable[client]
            if state[g] == STATE_ACTIVE
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda g: self.gateway_array.utilization(g, self._now_hint))

    # ------------------------------------------------------------------
    # Fleet churn
    # ------------------------------------------------------------------
    def _capacity_for(self, client: int, gateway_id: int) -> float:
        """Wireless capacity of a client↔gateway link, via the caches."""
        if gateway_id == self._home_gateway[client]:
            return self._home_capacity[client]
        capacity = self.channel._cache.get((client, gateway_id))
        if capacity is None:
            capacity = self.channel.capacity(client, gateway_id, False)
        return capacity

    def _rescue_gateway(self, client: int) -> Optional[int]:
        """An in-service gateway to carry ``client``'s traffic.

        Preference order: the home gateway when it is in service, then —
        only under aggregation schemes, whose terminals can attach to
        neighbour gateways — the lowest-id reachable in-service gateway
        that is already online, then the lowest-id reachable in-service
        gateway (it will be woken).  Without aggregation every flow goes
        through the home gateway, so a client whose home is out of service
        is simply cut off.  Returns ``None`` when no rescue exists.
        """
        in_service = self.gateway_array.in_service
        home = self._home_gateway[client]
        if in_service[home]:
            return home
        if self._simple_routing:
            return None
        state = self.gateway_array.state
        candidates = sorted(
            g for g in self.scenario.topology.reachable[client] if in_service[g]
        )
        if not candidates:
            return None
        for gateway_id in candidates:
            if state[gateway_id] == STATE_ACTIVE:
                return gateway_id
        return candidates[0]

    def _gateway_out(self, gateway_id: int, now: float) -> None:
        """Take a gateway out of service: unplug it and rescue its flows."""
        gateway_array = self.gateway_array
        gateway_array.set_in_service(gateway_id, False, now)
        scheduler = self.scheduler
        group = scheduler._groups.get(gateway_id)
        if group:
            state = gateway_array.state
            tracer = self.tracer
            for flow in list(group):
                client = flow.flow.client_id
                target = self._rescue_gateway(client)
                if target is None:
                    scheduler.cancel(flow)
                    self._dropped_flows += 1
                    if tracer is not None:
                        tracer.event(
                            "flow.drop", now, cat="churn",
                            client=client, gateway=gateway_id,
                        )
                    continue
                if tracer is not None:
                    tracer.event(
                        "flow.rescue", now, cat="churn",
                        client=client, from_gateway=gateway_id, to_gateway=target,
                    )
                scheduler.migrate(flow, target, self._capacity_for(client, target))
                if state[target] == STATE_SLEEPING:
                    gateway_array.request_wake(target, now)
                gateway_array.touch(target, now)
                self.selected_gateway[client] = target
                self.fallback_gateway[client] = None
        # Re-point routing state that still references the dead gateway.
        home_map = self._home_gateway
        for client, selected in self.selected_gateway.items():
            if selected == gateway_id:
                rescued = self._rescue_gateway(client)
                self.selected_gateway[client] = (
                    rescued if rescued is not None else home_map[client]
                )
        for client, fallback in self.fallback_gateway.items():
            if fallback == gateway_id:
                self.fallback_gateway[client] = None
        self._optimal_online.discard(gateway_id)

    def _gateway_in(self, gateway_id: int, now: float) -> None:
        """Put a gateway (back) into service.

        Under always-on schemes the device powers straight up; sleep-capable
        schemes leave it asleep until traffic (or a decision) wakes it.
        """
        self.gateway_array.set_in_service(
            gateway_id, True, now, activate=not self.scheme.sleep_enabled
        )

    def _apply_churn(self, now: float) -> None:
        """Execute every compiled churn action due at or before ``now``."""
        actions = self._churn_actions
        index = self._churn_index
        count = len(actions)
        scheduler = self.scheduler
        tracer = self.tracer
        while index < count and actions[index].at_s <= now:
            action = actions[index]
            index += 1
            if action.kind.is_gateway:
                if action.into_service:
                    self._gateway_in(action.entity_id, now)
                else:
                    self._gateway_out(action.entity_id, now)
                if tracer is not None:
                    tracer.event(
                        "churn.gateway_in" if action.into_service
                        else "churn.gateway_out",
                        now, cat="churn", gateway=action.entity_id,
                    )
            elif action.into_service:
                self._clients_out.discard(action.entity_id)
                if tracer is not None:
                    tracer.event(
                        "churn.client_in", now, cat="churn",
                        client=action.entity_id,
                    )
            else:
                self._clients_out.add(action.entity_id)
                cancelled = scheduler.cancel_client(action.entity_id)
                self._dropped_flows += cancelled
                if tracer is not None:
                    tracer.event(
                        "churn.client_out", now, cat="churn",
                        client=action.entity_id, dropped_flows=cancelled,
                    )
        self._churn_index = index
        self._next_churn_at = actions[index].at_s if index < count else inf

    # ------------------------------------------------------------------
    # Aggregation logic
    # ------------------------------------------------------------------
    def _run_bh2_decisions(self, now: float) -> None:
        heap = self._decision_heap
        decision_times = self._decision_at
        due: List[int] = []
        while heap and heap[0][0] <= now:
            instant, index = heappop(heap)
            if decision_times[index] == instant:
                due.append(index)
            # Entries whose time moved on are stale duplicates: drop them.
        if not due:
            self._min_decision_at = heap[0][0] if heap else inf
            return
        due.sort()
        view = self._gateway_observations(now)
        online_flags = view.online
        loads = view.load
        # When no gateway at all is hitch-hiking-eligible this round (very
        # common at night), every candidate search is provably empty and the
        # terminals can skip it.
        bh2_config = self.scheme.bh2
        # A candidate needs load above either tier's floor (the preferred
        # tier uses low_threshold, the fallback tier candidate_min_load —
        # either may be the smaller) and below the high threshold.
        min_load = min(bh2_config.candidate_min_load, bh2_config.low_threshold)
        high = bh2_config.high_threshold
        candidates_possible = False
        for gateway_id in self._current_online_set():
            load = loads[gateway_id]
            if min_load < load < high:
                candidates_possible = True
                break
        # Only decisions that send a terminal home with a wake request need
        # the set of clients with traffic — compute it lazily (rare).
        clients_with_flows: Optional[Set[int]] = None
        gateway_array = self.gateway_array
        state = gateway_array.state
        decision_at = self._decision_at
        terminals = self._terminal_list
        selected_map = self.selected_gateway
        fallback_map = self.fallback_gateway
        for index in due:
            terminal = terminals[index]
            previous = terminal.current_gateway
            selected, wake_home = terminal.decide_fast(
                now, online_flags, loads, candidates_possible
            )
            client = terminal.client_id
            if selected != previous:
                if wake_home:
                    if clients_with_flows is None:
                        clients_with_flows = self.scheduler.clients_with_traffic()
                    if client in clients_with_flows:
                        # Wake the home gateway only when there is traffic to
                        # carry back; idle terminals re-attach lazily (the next
                        # flow arrival wakes the home gateway if still needed).
                        gateway_array.request_wake(terminal.home_gateway, now)
                        # Traffic keeps using the previous gateway while home wakes.
                        if state[previous] == STATE_ACTIVE:
                            fallback_map[client] = previous
                    else:
                        fallback_map[client] = None
                else:
                    fallback_map[client] = None
            # Unconditional: _routing_gateway may have rerouted this client
            # behind the terminal's back; every decision re-asserts it.
            selected_map[client] = selected
            next_at = terminal._next_decision_at
            decision_at[index] = next_at
            heappush(heap, (next_at, index))
        self._min_decision_at = heap[0][0] if heap else inf
        self._bh2_rounds += 1
        self._bh2_decisions += len(due)
        if self.tracer is not None:
            self.tracer.event(
                "bh2.round", now, cat="bh2",
                decisions=len(due),
                online=sorted(self._current_online_set()),
            )

    def _gateway_observations(self, now: float) -> GatewayObservationArray:
        """Refresh and return the reusable array-backed observation view."""
        view = self._obs_view
        online_flags = view.online
        loads = view.load
        gateway_array = self.gateway_array
        if self._obs_flags_version != gateway_array.version:
            state = gateway_array.state
            for gateway_id in range(self.scenario.num_gateways):
                online_flags[gateway_id] = state[gateway_id] == STATE_ACTIVE
            self._obs_flags_version = gateway_array.version
        # Offline gateways keep stale load entries: every consumer gates the
        # read behind the online flag, so only online loads need refreshing.
        # Inlined utilisation fast path: reuse each gateway's cached window
        # sum while its live sample slice is unchanged.
        window = gateway_array.load_window_s
        denom = gateway_array.backhaul_bps * window
        sample_times = gateway_array._sample_times
        util_cache = gateway_array._util_cache
        utilization = gateway_array.utilization
        horizon = now - window
        windowed = now >= window
        for gateway_id in self._current_online_set():
            times = sample_times[gateway_id]
            length = len(times)
            cached = util_cache[gateway_id]
            if (
                windowed
                and cached[1] == length
                and (cached[0] == length or times[cached[0]] >= horizon)
            ):
                load = cached[2] / denom
                loads[gateway_id] = load if load < 1.0 else 1.0
            else:
                loads[gateway_id] = utilization(gateway_id, now)
        return view

    def _optimal_wireless(self) -> Dict[Tuple[int, int], float]:
        """The full client↔gateway wireless-capacity map, built once.

        Entries for clients without demand in a given period are harmless:
        the solver only consults the pairs of its demand users.
        """
        cached = self._optimal_wireless_cache
        if cached is None:
            topology = self.scenario.topology
            capacity_of = self.channel.capacity
            cached = {}
            for client, home in topology.home_gateway.items():
                for gateway in topology.reachable[client]:
                    cached[(client, gateway)] = capacity_of(client, gateway, gateway == home)
            self._optimal_wireless_cache = cached
        return cached

    def _optimal_capacities(self) -> Dict[int, float]:
        """Per-gateway backhaul capacities (constant; built once)."""
        cached = self._optimal_capacities_cache
        if cached is None:
            cached = {
                g: self.scenario.wireless.backhaul_bps
                for g in range(self.scenario.num_gateways)
            }
            self._optimal_capacities_cache = cached
        return cached

    def _precompute_period_demand(self) -> Dict[int, Dict[int, float]]:
        """Per-period, per-client demand (bps) implied by the trace.

        The paper's *Optimal* scheme recomputes the assignment every minute
        knowing the users' demands; we give it the demand each client will
        actually generate during the upcoming period, which is the natural
        clairvoyant upper bound.
        """
        period = self.scheme.optimal_period_s
        demand: Dict[int, Dict[int, float]] = {}
        # Arrivals are sorted by start time, so the period buckets come in
        # non-decreasing runs and the bucket lookup can be hoisted.
        current_index = -1
        bucket: Dict[int, float] = {}
        for flow in self._arrivals:
            index = int(flow.start_time // period)
            if index != current_index:
                bucket = demand.setdefault(index, {})
                current_index = index
            client = flow.client_id
            bucket[client] = bucket.get(client, 0.0) + flow.size_bytes * 8.0 / period
        return demand

    def _run_optimal(self, now: float) -> None:
        period_index = int(now // self.scheme.optimal_period_s)
        demands = dict(self._upcoming_demand.get(period_index, {}))
        # Add the backlog of flows still in flight so they keep a serving gateway.
        for client, backlog in self.scheduler.client_demand_bps(
            horizon_s=self.scheme.optimal_period_s
        ).items():
            demands[client] = demands.get(client, 0.0) + backlog
        if self._clients_out:
            # Unsubscribed (or not-yet-subscribed) clients have no demand.
            demands = {c: d for c, d in demands.items() if c not in self._clients_out}
        if not demands:
            # Nothing to carry: every gateway may sleep.
            self._optimal_online = set()
            return
        # A single client can never use more than the ADSL backhaul, so cap
        # its demand there (otherwise a large backlog would look unservable).
        cap = self.scenario.wireless.backhaul_bps
        demands = {c: min(d, cap) for c, d in demands.items()}
        topology = self.scenario.topology
        capacities = self._optimal_capacities()
        if self._has_gateway_churn:
            # Out-of-service gateways cannot be selected by the solver.
            in_service = self.gateway_array.in_service
            capacities = {g: c for g, c in capacities.items() if in_service[g]}
        problem = AggregationProblem(
            demands_bps=demands,
            capacities_bps=capacities,
            wireless_bps=self._optimal_wireless(),
            backup=self.scheme.bh2.backup,
            max_utilization=self.scheme.optimal_max_utilization,
        )
        solution = self._optimal_solver.solve(problem)
        self._solver_invocations += 1
        self._optimal_online = set(solution.online_gateways)
        if self.tracer is not None:
            self.tracer.event(
                "optimal.solve", now, cat="optimal",
                online=sorted(self._optimal_online),
                demand_clients=len(demands),
            )
        # Wake the selected gateways (instantaneously for the idealised bound).
        gateway_array = self.gateway_array
        for gateway_id in solution.online_gateways:
            if gateway_array.state[gateway_id] == STATE_SLEEPING:
                gateway_array.request_wake(gateway_id, now)
            gateway_array.touch(gateway_id, now)
        # Migrate in-flight flows and update the routing of future flows.
        assignment = solution.assignment
        home_gateway = topology.home_gateway
        for flow in self.scheduler.active_flows:
            client = flow.client_id
            assigned = assignment.get(client)
            if assigned:
                primary = assigned[0]
                if primary != flow.gateway_id:
                    self.scheduler.migrate(
                        flow,
                        primary,
                        self.channel.capacity(client, primary, primary == home_gateway[client]),
                    )
        selected_map = self.selected_gateway
        for client in demands:
            assigned = assignment.get(client)
            if assigned:
                selected_map[client] = assigned[0]

    # ------------------------------------------------------------------
    # Per-step mechanics
    # ------------------------------------------------------------------
    def _current_online_set(self) -> Set[int]:
        """Set of online gateway ids; the same object while states are unchanged.

        Object identity doubles as the scheduler's change signal, so a new
        set is only built when some gateway actually transitioned.
        """
        if self._online_version != self.gateway_array.version:
            self._online_set = set(self.gateway_array.online_ids())
            self._online_version = self.gateway_array.version
        return self._online_set

    def _sync_dslam(self) -> None:
        """Re-pack the HDF switches and refresh the line-card count.

        The seed rewires every step; rewiring is deterministic and
        idempotent for unchanged gateway states, so it only needs to run
        when some state actually changed.
        """
        gateway_array = self.gateway_array
        if gateway_array.version == self._dslam_version:
            return
        state = gateway_array.state
        if self.dslam.mode is not SwitchingMode.FIXED:
            line_active = {
                g: state[g] != STATE_SLEEPING for g in range(self.scenario.num_gateways)
            }
            if self.scheme.idealized_transitions:
                movable = set(range(self.scenario.num_gateways))
            else:
                movable = {
                    g for g in range(self.scenario.num_gateways) if state[g] != STATE_ACTIVE
                }
            self.dslam.rewire(line_active, movable)
        self._cards_on = len(self.dslam.online_cards(gateway_array.not_sleeping_ids()))
        self._dslam_version = gateway_array.version

    def _accumulate_energy(
        self, start: float, end: float, active: int, waking: int, cards_on: int
    ) -> None:
        """Extend the pending constant-power segment or flush and restart it."""
        run = self._energy_run
        if (
            run is not None
            and run[1] == start
            and run[2] == active
            and run[3] == waking
            and run[4] == cards_on
        ):
            run[1] = end
        else:
            self._flush_energy()
            self._energy_run = [start, end, active, waking, cards_on]
            if self.energy_segments is not None:
                self._energy_run_counts = self._segment_counts(active, waking)

    def _segment_counts(self, active: int, waking: int) -> tuple:
        """Single-generation device counts of a homogeneous segment.

        ``active``/``waking`` are exactly what the segment is charged with;
        the remainder of the in-service fleet sleeps (out-of-service
        devices are forced asleep and excluded from ``in_service_count``).
        """
        sleeping = self.gateway_array.in_service_count - active - waking
        return ((int(active), int(waking), max(0, int(sleeping))),)

    def _segment_counts_het(self, segment_end: float) -> tuple:
        """Per-generation (active, waking, sleeping-in-service) counts of
        the state charged over the segment ending at ``segment_end``.

        Called at segment creation.  The live state arrays already hold
        the post-``step_to`` state, so for a stretched run's pre-segment —
        charged with the state *before* the transitions applied at the
        grid end — the log tail's later transitions are undone first.
        """
        array = self.gateway_array
        state = list(array.state)
        log = array.transition_log
        if log:
            for ts, gateway_id, old_state, _new_state in reversed(log):
                if ts <= segment_end:
                    break
                state[gateway_id] = old_state
        counts = [[0, 0, 0] for _ in self._generation_names]
        generation = array._generation
        in_service = array.in_service
        for gateway_id, device_state in enumerate(state):
            if not in_service[gateway_id]:
                continue  # out-of-service devices are charged nothing
            # Slot order (active, waking, sleeping) = states (2, 1, 0).
            counts[generation[gateway_id]][2 - device_state] += 1
        return tuple(tuple(per_gen) for per_gen in counts)

    def _accumulate_energy_het(
        self,
        start: float,
        end: float,
        snapshot: Tuple[Tuple[float, ...], ...],
        powered: int,
        cards_on: int,
    ) -> None:
        """Heterogeneous-fleet twin of :meth:`_accumulate_energy`.

        Segments carry the per-generation power snapshot (same object while
        no gateway transitioned) plus the powered-gateway count for the
        per-line ISP modems.
        """
        run = self._energy_run
        if (
            run is not None
            and run[1] == start
            and run[2] == snapshot
            and run[3] == powered
            and run[4] == cards_on
        ):
            run[1] = end
        else:
            self._flush_energy()
            self._energy_run = [start, end, snapshot, powered, cards_on]
            if self.energy_segments is not None:
                self._energy_run_counts = self._segment_counts_het(end)

    def _flush_energy(self) -> None:
        run = self._energy_run
        if run is None:
            return
        model = self.power_model
        energy = self.energy
        if self._fleet_hetero:
            start, end, snapshot, powered, cards_on = run
            duration = end - start
            active_by_gen, waking_by_gen, sleeping_by_gen = snapshot
            for index, name in enumerate(self._generation_names):
                energy.charge_at(
                    f"gateway:{name}",
                    active_by_gen[index] + waking_by_gen[index] + sleeping_by_gen[index],
                    start,
                    duration,
                )
        else:
            start, end, active, waking, cards_on = run
            duration = end - start
            powered = active + waking
            energy.charge_at("gateway", model.user_side_power(active, waking), start, duration)
        energy.charge_at("isp_modem", powered * model.isp_modem.active_w, start, duration)
        energy.charge_at("line_card", cards_on * model.line_card.active_w, start, duration)
        energy.charge_at("dslam_shelf", model.dslam_shelf.active_w, start, duration)
        segments = self.energy_segments
        if segments is not None:
            segments.append((start, end, self._energy_run_counts))
            self._energy_run_counts = None
        self._energy_run = None

    def _record_sample(self, now: float) -> None:
        active = self.gateway_array.active_count
        waking = self.gateway_array.waking_count
        powered = active + waking
        self._samples.append((now, powered, waking, powered, self._cards_on))

    # ------------------------------------------------------------------
    def _next_dt(self, now: float, next_sample: float, horizon: float) -> float:
        self._now_hint = now
        dt = self.step_s
        if self.scheduler.has_active:
            return min(dt, horizon - now)
        # Network idle: skip ahead to the next interesting instant.
        candidates = [now + self.MAX_IDLE_SKIP_S, next_sample if next_sample > now else now + dt, horizon]
        if self._arrival_index < len(self._arrivals):
            candidates.append(self._arrival_times[self._arrival_index])
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            candidates.append(self._next_optimal_at if self._next_optimal_at > now else now + dt)
        transition = self.gateway_array.idle_transition_candidates(now)
        if isfinite(transition):
            candidates.append(transition)
        target = min(c for c in candidates if c > now)
        dt = max(self.step_s, min(target - now, self.MAX_IDLE_SKIP_S, horizon - now))
        # Churn events execute at their exact instants, closer than a full
        # step if need be (this clamp alone lands on them — a churn
        # candidate in the min above could never change the outcome).
        next_churn = self._next_churn_at
        if now < next_churn < now + dt:
            dt = next_churn - now
        return dt

    def _plan_stretch(
        self, now: float, next_sample: float, horizon: float
    ) -> Optional[List[float]]:
        """Grid instants (step ends) of the longest provably event-free run.

        The returned run may *end* on an event instant — loop-top events
        (samples, arrivals, decision epochs, optimal solves) are handled at
        the next iteration's top and end-of-step events (wake completions,
        idle-timeout sleeps, flow completions) are applied at the end of the
        final step, exactly where the seed kernel applies them.  Returns
        ``None`` when no stretch beyond a single step is possible.
        """
        step = self.step_s
        # Cheap scalar bounds first: most busy steps are capped at one step
        # by the next arrival or completion, so bail before any set work.
        limit = next_sample
        if self._arrival_index < len(self._arrival_times):
            arrival = self._arrival_times[self._arrival_index]
            if arrival < limit:
                limit = arrival
        if self._min_decision_at < limit:
            limit = self._min_decision_at
        next_churn = self._next_churn_at
        if next_churn < limit:
            limit = next_churn
        if self.scheme.aggregation is AggregationKind.OPTIMAL and self._next_optimal_at < limit:
            limit = self._next_optimal_at
        if limit <= now + step:
            return None
        pending = self.scheduler.gateway_group_map()
        if self.scheme.aggregation is AggregationKind.OPTIMAL and self._optimal_online:
            pending = set(pending) | self._optimal_online
        transition = self.gateway_array.stretch_transition_bound(pending)
        if transition < limit:
            limit = transition
        if limit <= now + step:
            return None
        completion = self.scheduler.stretch_completion_bound(
            now, self._current_online_set(), self._sleep_guard_s
        )
        if completion < limit:
            limit = completion
            if limit <= now + step:
                return None
        grid: List[float] = []
        t = now
        max_steps = self._max_stretch
        while len(grid) < max_steps:
            if horizon - t < step:
                break
            t_next = t + step
            if t_next > next_churn:
                # A stretch may end *on* a churn instant but never cross
                # one: the dt-capped single-step path lands on it exactly.
                break
            t = t_next
            grid.append(t)
            if t >= limit:
                break
        if not grid:
            return None
        return grid

    # ------------------------------------------------------------------
    def _build_result(self, horizon: float) -> SimulationResult:
        tracer = self.tracer
        if tracer is not None and self.gateway_array.transition_log:
            # Post-run: fold the raw transition log into per-gateway
            # sleep/wake/boot spans (one Perfetto track per gateway).
            from repro.obs.tracer import add_gateway_segments

            add_gateway_segments(
                tracer, self.gateway_array.transition_log, horizon
            )
        samples = np.array(self._samples, dtype=float)
        energy_times, energy_total = self.energy.timeseries()
        _times, energy_isp = self.energy.timeseries(
            categories=("isp_modem", "line_card", "dslam_shelf")
        )
        model = self.power_model
        baseline_isp = model.isp_side_power(
            modems_online=self.scenario.num_gateways,
            line_cards_online=self.scenario.dslam.num_line_cards,
        )
        if self._fleet_hetero:
            # Always-on operation of the mixed fleet: every gateway at its
            # own active draw, the full ISP side powered.
            baseline_power = self._baseline_user_w + baseline_isp
        else:
            baseline_power = model.no_sleep_power(
                num_gateways=self.scenario.num_gateways,
                num_line_cards=self.scenario.dslam.num_line_cards,
            )
        energy_breakdown = self.energy.breakdown()
        per_category = energy_breakdown.per_category_j
        if self._fleet_hetero:
            generation_energy = {
                name: per_category.get(f"gateway:{name}", 0.0)
                for name in self._generation_names
            }
        else:
            generation_energy = {
                self._generation_names[0]: per_category.get("gateway", 0.0)
            }
        gateway_array = self.gateway_array
        return SimulationResult(
            scheme_name=self.scheme.name,
            duration=horizon,
            num_gateways=self.scenario.num_gateways,
            num_line_cards=self.scenario.dslam.num_line_cards,
            sample_times=samples[:, 0] if samples.size else np.array([]),
            online_gateways=samples[:, 1] if samples.size else np.array([]),
            waking_gateways=samples[:, 2] if samples.size else np.array([]),
            online_modems=samples[:, 3] if samples.size else np.array([]),
            online_line_cards=samples[:, 4] if samples.size else np.array([]),
            energy=energy_breakdown,
            energy_series_times=np.array(energy_times, dtype=float),
            energy_series_total_j=np.array(energy_total, dtype=float),
            energy_series_isp_j=np.array(energy_isp, dtype=float),
            # Bind only what records() needs — closing over `self` would pin
            # the whole simulator in memory for every unmaterialised run.
            flow_records=LazyFlowRecords(
                lambda scheduler=self.scheduler, baselines=self.baseline_durations: (
                    scheduler.records(baselines=baselines)
                )
            ),
            gateway_online_seconds={
                g: gateway_array.online_seconds[g] + gateway_array.waking_seconds[g]
                for g in range(self.scenario.num_gateways)
            },
            baseline_power_w=baseline_power,
            baseline_isp_power_w=baseline_isp,
            steps_taken=self.steps_taken,
            generation_energy_j=generation_energy,
            generation_counts=dict(self._generation_counts),
            dropped_flows=self._dropped_flows,
            suppressed_arrivals=self._suppressed_arrivals,
            solver_invocations=self._solver_invocations,
            bh2_rounds=self._bh2_rounds,
            bh2_decisions=self._bh2_decisions,
            rate_recomputes=self.scheduler.rate_recomputes,
            rate_cache_hits=self.scheduler.rate_cache_hits,
        )

    #: Time hint used by helpers that need "now" outside the main loop.
    _now_hint: float = 0.0
