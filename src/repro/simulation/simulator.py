"""The trace-driven access-network simulator.

The simulator advances in (adaptively sized) time steps.  During every step
it admits newly arrived flows, runs the aggregation logic (BH2 terminal
decisions or the centralised optimal), shares each online gateway's
backhaul among its flows, advances the gateway Sleep-on-Idle state
machines, re-terminates lines through the HDF switches, and charges energy
to every device category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.access.dslam import Dslam, SwitchingMode
from repro.access.gateway import Gateway
from repro.access.soi import SoIConfig
from repro.core.bh2 import BH2Terminal, GatewayObservation
from repro.core.optimal import AggregationProblem, GreedyAggregationSolver
from repro.core.schemes import AggregationKind, SchemeConfig, SwitchingKind
from repro.flows.flow import ActiveFlow, FlowRecord
from repro.flows.scheduler import FlowScheduler
from repro.power.energy import EnergyAccumulator, EnergyBreakdown
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL, PowerState
from repro.topology.scenario import DslamConfig, Scenario
from repro.traces.models import Flow
from repro.wireless.channel import WirelessChannel


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    scheme_name: str
    duration: float
    num_gateways: int
    num_line_cards: int
    sample_times: np.ndarray
    online_gateways: np.ndarray
    waking_gateways: np.ndarray
    online_modems: np.ndarray
    online_line_cards: np.ndarray
    energy: EnergyBreakdown
    energy_series_times: np.ndarray
    energy_series_total_j: np.ndarray
    energy_series_isp_j: np.ndarray
    flow_records: List[FlowRecord]
    gateway_online_seconds: Dict[int, float]
    baseline_power_w: float
    baseline_isp_power_w: float

    # ------------------------------------------------------------------
    @property
    def sample_interval_s(self) -> float:
        """Spacing of the metric samples."""
        if len(self.sample_times) > 1:
            return float(self.sample_times[1] - self.sample_times[0])
        return self.duration

    def savings_timeseries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Energy savings vs. the no-sleep baseline per interval (Fig. 6).

        Returns ``(times, percent_savings)``.
        """
        interval = np.diff(
            np.append(self.energy_series_times, self.energy_series_times[-1] + self._interval())
        ) if len(self.energy_series_times) else np.array([])
        baseline_j = self.baseline_power_w * interval
        with np.errstate(divide="ignore", invalid="ignore"):
            savings = 100.0 * (1.0 - self.energy_series_total_j / baseline_j)
        return self.energy_series_times, savings

    def isp_share_of_savings_timeseries(self) -> Tuple[np.ndarray, np.ndarray]:
        """Share of the per-interval savings contributed by the ISP side (Fig. 8)."""
        interval = self._interval()
        baseline_total = self.baseline_power_w * interval
        baseline_isp = self.baseline_isp_power_w * interval
        saved_total = baseline_total - self.energy_series_total_j
        saved_isp = baseline_isp - self.energy_series_isp_j
        share = np.zeros_like(saved_total)
        positive = saved_total > 1e-9
        share[positive] = 100.0 * np.clip(saved_isp[positive] / saved_total[positive], 0.0, 1.0)
        return self.energy_series_times, share

    def mean_savings(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average energy savings (fraction) over a time window."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.energy_series_times >= t_start) & (self.energy_series_times < t_end)
        if not mask.any():
            return 0.0
        consumed = float(self.energy_series_total_j[mask].sum())
        baseline = self.baseline_power_w * self._interval() * int(mask.sum())
        return 1.0 - consumed / baseline if baseline > 0 else 0.0

    def mean_isp_share_of_savings(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average fraction of the savings contributed by the ISP side."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.energy_series_times >= t_start) & (self.energy_series_times < t_end)
        if not mask.any():
            return 0.0
        n = int(mask.sum())
        baseline_total = self.baseline_power_w * self._interval() * n
        baseline_isp = self.baseline_isp_power_w * self._interval() * n
        saved_total = baseline_total - float(self.energy_series_total_j[mask].sum())
        saved_isp = baseline_isp - float(self.energy_series_isp_j[mask].sum())
        if saved_total <= 0:
            return 0.0
        return max(0.0, min(1.0, saved_isp / saved_total))

    def mean_online_gateways(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average number of powered gateways over a time window (Fig. 7)."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.sample_times >= t_start) & (self.sample_times < t_end)
        if not mask.any():
            return 0.0
        return float(self.online_gateways[mask].mean())

    def mean_online_line_cards(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average number of powered line cards over a time window (Sec. 5.2.3)."""
        t_end = self.duration if t_end is None else t_end
        mask = (self.sample_times >= t_start) & (self.sample_times < t_end)
        if not mask.any():
            return 0.0
        return float(self.online_line_cards[mask].mean())

    def flow_durations(self) -> Dict[int, float]:
        """Completion time of every finished flow, keyed by flow id."""
        return {r.flow_id: r.duration_s for r in self.flow_records}

    def _interval(self) -> float:
        if len(self.energy_series_times) > 1:
            return float(self.energy_series_times[1] - self.energy_series_times[0])
        return self.duration


class AccessNetworkSimulator:
    """Simulates one scheme over one scenario."""

    #: Largest time step taken while the network is completely idle.
    MAX_IDLE_SKIP_S = 30.0

    def __init__(
        self,
        scenario: Scenario,
        scheme: SchemeConfig,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
        step_s: float = 1.0,
        sample_interval_s: float = 60.0,
        seed: int = 0,
        baseline_durations: Optional[Dict[int, float]] = None,
    ):
        if step_s <= 0 or sample_interval_s <= 0:
            raise ValueError("step_s and sample_interval_s must be positive")
        self.scenario = scenario
        self.scheme = scheme
        self.power_model = power_model
        self.step_s = step_s
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.baseline_durations = baseline_durations or {}
        self._rng = np.random.default_rng(seed)

        # --- devices ---------------------------------------------------
        soi = scheme.soi
        if scheme.idealized_transitions:
            soi = SoIConfig(idle_timeout_s=0.0, wake_up_time_s=0.0)
        self.gateways: Dict[int, Gateway] = {
            g: Gateway(
                gateway_id=g,
                backhaul_bps=scenario.wireless.backhaul_bps,
                soi=soi,
                sleep_enabled=scheme.sleep_enabled,
                load_window_s=scheme.bh2.load_window_s,
                initially_sleeping=scheme.sleep_enabled,
            )
            for g in range(scenario.num_gateways)
        }
        self.dslam = Dslam(
            config=self._dslam_config(),
            line_ports=dict(scenario.gateway_port),
        )
        self.channel = WirelessChannel(
            home_capacity_bps=scenario.wireless.home_capacity_bps,
            neighbour_capacity_bps=scenario.wireless.neighbour_capacity_bps,
            seed=seed,
        )
        self.scheduler = FlowScheduler(backhaul_bps=scenario.wireless.backhaul_bps)

        # --- per-client routing state -----------------------------------
        self.selected_gateway: Dict[int, int] = dict(scenario.trace.home_gateway)
        self.fallback_gateway: Dict[int, Optional[int]] = {c: None for c in self.selected_gateway}
        self.terminals: Dict[int, BH2Terminal] = {}
        if scheme.aggregation is AggregationKind.BH2:
            for client, home in scenario.trace.home_gateway.items():
                self.terminals[client] = BH2Terminal(
                    client_id=client,
                    home_gateway=home,
                    reachable_gateways=scenario.topology.reachable[client],
                    config=scheme.bh2,
                    rng=np.random.default_rng(self._rng.integers(2**31 - 1)),
                )
        self._optimal_solver = GreedyAggregationSolver()
        self._next_optimal_at = 0.0
        #: Gateways the last optimal solve decided to keep online (they stay
        #: powered until the next solve, even if they carry only backup load).
        self._optimal_online: Set[int] = set()

        # --- trace -------------------------------------------------------
        self._arrivals: List[Flow] = scenario.trace.all_flows()
        self._arrival_index = 0
        self._upcoming_demand: Dict[int, Dict[int, float]] = {}
        if scheme.aggregation is AggregationKind.OPTIMAL:
            self._upcoming_demand = self._precompute_period_demand()

        # --- accounting ---------------------------------------------------
        self.energy = EnergyAccumulator(
            interval_seconds=sample_interval_s, horizon=scenario.trace.duration
        )
        self._samples: List[Tuple[float, int, int, int, int]] = []

    # ------------------------------------------------------------------
    def _dslam_config(self) -> DslamConfig:
        base = self.scenario.dslam
        if self.scheme.switching is SwitchingKind.NONE:
            return base.with_switch(None, full=False)
        if self.scheme.switching is SwitchingKind.FULL:
            return base.with_switch(None, full=True)
        return base.with_switch(base.switch_size or 4, full=False)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the simulation and return the collected metrics."""
        horizon = self.scenario.trace.duration if until is None else min(
            until, self.scenario.trace.duration
        )
        now = 0.0
        next_sample = 0.0
        while now < horizon:
            if now >= next_sample:
                self._record_sample(now)
                next_sample += self.sample_interval_s
            dt = self._next_dt(now, next_sample, horizon)
            self._admit_arrivals(now)
            if self.scheme.aggregation is AggregationKind.BH2:
                self._run_bh2_decisions(now)
            elif self.scheme.aggregation is AggregationKind.OPTIMAL and now >= self._next_optimal_at:
                self._run_optimal(now)
                self._next_optimal_at += self.scheme.optimal_period_s
            self._serve_flows(now, dt)
            self._step_gateways(now, dt)
            self._update_dslam()
            self._charge_energy(now, dt)
            now += dt
        self._record_sample(min(now, horizon))
        return self._build_result(horizon)

    # ------------------------------------------------------------------
    # Flow admission and routing
    # ------------------------------------------------------------------
    def _admit_arrivals(self, now: float) -> None:
        while (
            self._arrival_index < len(self._arrivals)
            and self._arrivals[self._arrival_index].start_time <= now
        ):
            flow = self._arrivals[self._arrival_index]
            self._arrival_index += 1
            self._route_flow(flow, now)

    def _route_flow(self, flow: Flow, now: float) -> None:
        client = flow.client_id
        gateway_id = self._routing_gateway(client, now)
        home = self.scenario.trace.home_gateway[client]
        is_home = gateway_id == home
        capacity = self.channel.capacity(client, gateway_id, is_home)
        active = ActiveFlow(flow=flow, gateway_id=gateway_id, wireless_capacity_bps=capacity)
        self.scheduler.admit(active)
        gateway = self.gateways[gateway_id]
        if gateway.is_sleeping:
            gateway.request_wake(now)
        gateway.touch(now)

    def _routing_gateway(self, client: int, now: float) -> int:
        """Which gateway a *new* flow of ``client`` should be routed through."""
        home = self.scenario.trace.home_gateway[client]
        selected = self.selected_gateway.get(client, home)
        gateway = self.gateways[selected]
        if gateway.is_online:
            self.fallback_gateway[client] = None
            return selected
        if selected == home:
            # Home gateway is asleep or waking: wake it and wait.
            return home
        if gateway.is_waking:
            # We are waiting for a remote gateway: keep traffic on the
            # fallback (usually the previous gateway) while it becomes
            # operational, otherwise wait.
            fallback = self.fallback_gateway.get(client)
            if fallback is not None and self.gateways[fallback].is_online:
                return fallback
            return selected
        # The selected remote gateway went to sleep.  A terminal can only
        # wake its own home gateway, so return home.
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            alternative = self._best_online_gateway(client)
            if alternative is not None:
                self.selected_gateway[client] = alternative
                return alternative
        self.selected_gateway[client] = home
        self.fallback_gateway[client] = None
        return home

    def _best_online_gateway(self, client: int) -> Optional[int]:
        """Least-loaded online gateway reachable by ``client`` (optimal scheme)."""
        candidates = [
            g
            for g in self.scenario.topology.reachable[client]
            if self.gateways[g].is_online
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda g: self.gateways[g].utilization(self._now_hint))

    # ------------------------------------------------------------------
    # Aggregation logic
    # ------------------------------------------------------------------
    def _run_bh2_decisions(self, now: float) -> None:
        due = [t for t in self.terminals.values() if t.decision_due(now)]
        if not due:
            return
        observations = self._gateway_observations(now)
        clients_with_flows = {f.client_id for f in self.scheduler.active_flows}
        for terminal in due:
            previous = terminal.current_gateway
            decision = terminal.decide(now, observations)
            client = terminal.client_id
            if decision.selected_gateway != previous:
                if decision.wake_home and client in clients_with_flows:
                    # Wake the home gateway only when there is traffic to
                    # carry back; idle terminals re-attach lazily (the next
                    # flow arrival wakes the home gateway if still needed).
                    self.gateways[terminal.home_gateway].request_wake(now)
                    # Traffic keeps using the previous gateway while home wakes.
                    if self.gateways[previous].is_online:
                        self.fallback_gateway[client] = previous
                else:
                    self.fallback_gateway[client] = None
            self.selected_gateway[client] = decision.selected_gateway

    def _gateway_observations(self, now: float) -> Dict[int, GatewayObservation]:
        observations = {}
        for gateway_id, gateway in self.gateways.items():
            observations[gateway_id] = GatewayObservation(
                gateway_id=gateway_id,
                online=gateway.is_online,
                load=gateway.utilization(now) if gateway.is_online else 0.0,
            )
        return observations

    def _precompute_period_demand(self) -> Dict[int, Dict[int, float]]:
        """Per-period, per-client demand (bps) implied by the trace.

        The paper's *Optimal* scheme recomputes the assignment every minute
        knowing the users' demands; we give it the demand each client will
        actually generate during the upcoming period, which is the natural
        clairvoyant upper bound.
        """
        period = self.scheme.optimal_period_s
        demand: Dict[int, Dict[int, float]] = {}
        for flow in self._arrivals:
            index = int(flow.start_time // period)
            bucket = demand.setdefault(index, {})
            bucket[flow.client_id] = bucket.get(flow.client_id, 0.0) + flow.size_bytes * 8.0 / period
        return demand

    def _run_optimal(self, now: float) -> None:
        period_index = int(now // self.scheme.optimal_period_s)
        demands = dict(self._upcoming_demand.get(period_index, {}))
        # Add the backlog of flows still in flight so they keep a serving gateway.
        for client, backlog in self.scheduler.client_demand_bps(
            horizon_s=self.scheme.optimal_period_s
        ).items():
            demands[client] = demands.get(client, 0.0) + backlog
        if not demands:
            # Nothing to carry: every gateway may sleep.
            self._optimal_online = set()
            return
        # A single client can never use more than the ADSL backhaul, so cap
        # its demand there (otherwise a large backlog would look unservable).
        cap = self.scenario.wireless.backhaul_bps
        demands = {c: min(d, cap) for c, d in demands.items()}
        topology = self.scenario.topology
        wireless: Dict[Tuple[int, int], float] = {}
        for client in demands:
            home = topology.home_gateway[client]
            for gateway in topology.reachable[client]:
                wireless[(client, gateway)] = self.channel.capacity(
                    client, gateway, gateway == home
                )
        problem = AggregationProblem(
            demands_bps=demands,
            capacities_bps={
                g: self.scenario.wireless.backhaul_bps for g in range(self.scenario.num_gateways)
            },
            wireless_bps=wireless,
            backup=self.scheme.bh2.backup,
            max_utilization=self.scheme.optimal_max_utilization,
        )
        solution = self._optimal_solver.solve(problem)
        self._optimal_online = set(solution.online_gateways)
        # Wake the selected gateways (instantaneously for the idealised bound).
        for gateway_id in solution.online_gateways:
            gateway = self.gateways[gateway_id]
            if gateway.is_sleeping:
                gateway.request_wake(now)
            gateway.touch(now)
        # Migrate in-flight flows and update the routing of future flows.
        for flow in self.scheduler.active_flows:
            client = flow.client_id
            primary = solution.primary_gateway(client)
            if primary is not None and primary != flow.gateway_id:
                home = topology.home_gateway[client]
                flow.gateway_id = primary
                flow.wireless_capacity_bps = self.channel.capacity(
                    client, primary, primary == home
                )
        for client in demands:
            primary = solution.primary_gateway(client)
            if primary is not None:
                self.selected_gateway[client] = primary

    # ------------------------------------------------------------------
    # Per-step mechanics
    # ------------------------------------------------------------------
    def _serve_flows(self, now: float, dt: float) -> None:
        online = {g for g, gw in self.gateways.items() if gw.is_online}
        served, _completed = self.scheduler.step(now, dt, online)
        for gateway_id, bits in served.items():
            if bits > 0:
                self.gateways[gateway_id].record_traffic(bits, now + dt)

    def _step_gateways(self, now: float, dt: float) -> None:
        pending = self.scheduler.gateways_with_traffic()
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            pending = pending | self._optimal_online
        end = now + dt
        for gateway_id, gateway in self.gateways.items():
            gateway.step(end, dt, has_pending_traffic=gateway_id in pending)

    def _update_dslam(self) -> None:
        line_active = {
            g: not gw.is_sleeping for g, gw in self.gateways.items()
        }
        if self.dslam.mode is SwitchingMode.FIXED:
            return
        if self.scheme.idealized_transitions:
            movable = set(self.gateways)
        else:
            movable = {g for g, gw in self.gateways.items() if not gw.is_online}
        self.dslam.rewire(line_active, movable)

    def _charge_energy(self, now: float, dt: float) -> None:
        active = sum(1 for gw in self.gateways.values() if gw.state is PowerState.ACTIVE)
        waking = sum(1 for gw in self.gateways.values() if gw.state is PowerState.WAKING)
        modems_on = active + waking
        cards_on = len(self.dslam.online_cards(
            [g for g, gw in self.gateways.items() if not gw.is_sleeping]
        ))
        model = self.power_model
        self.energy.charge_at("gateway", model.user_side_power(active, waking), now, dt)
        self.energy.charge_at("isp_modem", modems_on * model.isp_modem.active_w, now, dt)
        self.energy.charge_at("line_card", cards_on * model.line_card.active_w, now, dt)
        self.energy.charge_at("dslam_shelf", model.dslam_shelf.active_w, now, dt)

    def _record_sample(self, now: float) -> None:
        active = sum(1 for gw in self.gateways.values() if gw.state is PowerState.ACTIVE)
        waking = sum(1 for gw in self.gateways.values() if gw.state is PowerState.WAKING)
        not_sleeping = [g for g, gw in self.gateways.items() if not gw.is_sleeping]
        cards_on = len(self.dslam.online_cards(not_sleeping))
        self._samples.append((now, active + waking, waking, len(not_sleeping), cards_on))

    # ------------------------------------------------------------------
    def _next_dt(self, now: float, next_sample: float, horizon: float) -> float:
        self._now_hint = now
        dt = self.step_s
        if self.scheduler.active_flows:
            return min(dt, horizon - now)
        # Network idle: skip ahead to the next interesting instant.
        candidates = [now + self.MAX_IDLE_SKIP_S, next_sample if next_sample > now else now + dt, horizon]
        if self._arrival_index < len(self._arrivals):
            candidates.append(self._arrivals[self._arrival_index].start_time)
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            candidates.append(self._next_optimal_at if self._next_optimal_at > now else now + dt)
        for gateway in self.gateways.values():
            transition = gateway.next_transition_time()
            if transition is not None and transition > now:
                candidates.append(transition)
        target = min(c for c in candidates if c > now)
        return max(self.step_s, min(target - now, self.MAX_IDLE_SKIP_S, horizon - now))

    # ------------------------------------------------------------------
    def _build_result(self, horizon: float) -> SimulationResult:
        samples = np.array(self._samples, dtype=float)
        energy_times, energy_total = self.energy.timeseries()
        _times, energy_isp = self.energy.timeseries(
            categories=("isp_modem", "line_card", "dslam_shelf")
        )
        model = self.power_model
        baseline_power = model.no_sleep_power(
            num_gateways=self.scenario.num_gateways,
            num_line_cards=self.scenario.dslam.num_line_cards,
        )
        baseline_isp = model.isp_side_power(
            modems_online=self.scenario.num_gateways,
            line_cards_online=self.scenario.dslam.num_line_cards,
        )
        return SimulationResult(
            scheme_name=self.scheme.name,
            duration=horizon,
            num_gateways=self.scenario.num_gateways,
            num_line_cards=self.scenario.dslam.num_line_cards,
            sample_times=samples[:, 0] if samples.size else np.array([]),
            online_gateways=samples[:, 1] if samples.size else np.array([]),
            waking_gateways=samples[:, 2] if samples.size else np.array([]),
            online_modems=samples[:, 3] if samples.size else np.array([]),
            online_line_cards=samples[:, 4] if samples.size else np.array([]),
            energy=self.energy.breakdown(),
            energy_series_times=np.array(energy_times, dtype=float),
            energy_series_total_j=np.array(energy_total, dtype=float),
            energy_series_isp_j=np.array(energy_isp, dtype=float),
            flow_records=self.scheduler.records(baselines=self.baseline_durations),
            gateway_online_seconds={
                g: gw.online_seconds + gw.waking_seconds for g, gw in self.gateways.items()
            },
            baseline_power_w=baseline_power,
            baseline_isp_power_w=baseline_isp,
        )

    #: Time hint used by helpers that need "now" outside the main loop.
    _now_hint: float = 0.0
