"""The seed (pre-vectorization) simulation kernel, preserved verbatim.

This module freezes the original pure-Python per-step kernel exactly as it
shipped in the seed tree: one Python loop over gateways per step for
serving, state stepping, energy charging and sampling, a per-step rebuild
of the flow-to-gateway map, and the O(n^2) water-filling allocator.

It exists for two reasons:

* the equivalence tests assert that the vectorized kernel in
  :mod:`repro.simulation.simulator` reproduces the seed trajectory
  (same savings, same online-gateway samples, same flow records), and
* the perf benchmark (``benchmarks/test_bench_perf_kernel.py``) measures
  the speedup of the new kernel against this one and records it in
  ``BENCH_perf.json``.

Do not "optimise" this module: its value is being slow in exactly the way
the seed was.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.access.dslam import Dslam, SwitchingMode
from repro.access.gateway import Gateway
from repro.access.soi import SoIConfig
from repro.core.bh2 import BH2Terminal, GatewayObservation
from repro.core.optimal import AggregationProblem, GreedyAggregationSolver
from repro.core.schemes import AggregationKind, SchemeConfig, SwitchingKind
from repro.flows.flow import ActiveFlow, FlowRecord
from repro.power.energy import EnergyAccumulator
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL, PowerState
from repro.topology.scenario import DslamConfig, Scenario
from repro.traces.models import Flow
from repro.wireless.channel import WirelessChannel


def reference_max_min_allocation(capacity_bps: float, caps_bps: Sequence[float]) -> List[float]:
    """The seed's iterative water-filling allocator (kept for comparison)."""
    if capacity_bps < 0:
        raise ValueError("capacity must be non-negative")
    n = len(caps_bps)
    if n == 0:
        return []
    if any(c < 0 for c in caps_bps):
        raise ValueError("caps must be non-negative")
    allocation = [0.0] * n
    remaining = capacity_bps
    unsatisfied = [i for i in range(n) if caps_bps[i] > 0]
    while unsatisfied and remaining > 1e-12:
        share = remaining / len(unsatisfied)
        bottlenecked = [i for i in unsatisfied if caps_bps[i] - allocation[i] <= share]
        if bottlenecked:
            for i in bottlenecked:
                remaining -= caps_bps[i] - allocation[i]
                allocation[i] = caps_bps[i]
            unsatisfied = [i for i in unsatisfied if i not in set(bottlenecked)]
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


class ReferenceFlowScheduler:
    """The seed's per-step, dict-rebuilding flow scheduler."""

    def __init__(self, backhaul_bps: float):
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        self.backhaul_bps = backhaul_bps
        self._active: List[ActiveFlow] = []
        self._completed: List[ActiveFlow] = []

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> List[ActiveFlow]:
        return list(self._active)

    @property
    def completed_flows(self) -> List[ActiveFlow]:
        return list(self._completed)

    def admit(self, flow: ActiveFlow) -> None:
        if flow.done:
            raise ValueError("cannot admit an already-completed flow")
        self._active.append(flow)

    def flows_at_gateway(self, gateway_id: int) -> List[ActiveFlow]:
        return [f for f in self._active if f.gateway_id == gateway_id]

    def gateways_with_traffic(self) -> Set[int]:
        return {f.gateway_id for f in self._active}

    def demand_bps(self, gateway_id: int, horizon_s: float = 60.0) -> float:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        flows = self.flows_at_gateway(gateway_id)
        return sum(f.remaining_bytes * 8.0 for f in flows) / horizon_s

    def client_demand_bps(self, horizon_s: float = 60.0) -> Dict[int, float]:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        demand: Dict[int, float] = defaultdict(float)
        for flow in self._active:
            demand[flow.client_id] += flow.remaining_bytes * 8.0 / horizon_s
        return dict(demand)

    # ------------------------------------------------------------------
    def step(
        self,
        now: float,
        dt: float,
        online_gateways: Set[int],
        backhaul_bps: Optional[Dict[int, float]] = None,
    ) -> Tuple[Dict[int, float], List[ActiveFlow]]:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        served_per_gateway: Dict[int, float] = defaultdict(float)
        completed: List[ActiveFlow] = []
        if dt == 0:
            return dict(served_per_gateway), completed

        by_gateway: Dict[int, List[ActiveFlow]] = defaultdict(list)
        for flow in self._active:
            by_gateway[flow.gateway_id].append(flow)

        for gateway_id, flows in by_gateway.items():
            if gateway_id not in online_gateways:
                continue
            capacity = (
                backhaul_bps.get(gateway_id, self.backhaul_bps)
                if backhaul_bps is not None
                else self.backhaul_bps
            )
            caps = [f.wireless_capacity_bps for f in flows]
            rates = reference_max_min_allocation(capacity, caps)
            for flow, rate in zip(flows, rates):
                bits = flow.serve(rate, dt, now)
                served_per_gateway[gateway_id] += bits
                if flow.done:
                    completed.append(flow)

        if completed:
            done_ids = {id(f) for f in completed}
            self._active = [f for f in self._active if id(f) not in done_ids]
            self._completed.extend(completed)
        return dict(served_per_gateway), completed

    # ------------------------------------------------------------------
    def records(self, baselines: Optional[Dict[int, float]] = None) -> List[FlowRecord]:
        records = []
        for flow in self._completed:
            baseline = baselines.get(flow.flow.flow_id) if baselines else None
            records.append(flow.to_record(baseline_duration_s=baseline))
        return records


class ReferenceAccessNetworkSimulator:
    """The seed's per-step simulator, preserved for equivalence testing."""

    MAX_IDLE_SKIP_S = 30.0

    def __init__(
        self,
        scenario: Scenario,
        scheme: SchemeConfig,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
        step_s: float = 1.0,
        sample_interval_s: float = 60.0,
        seed: int = 0,
        baseline_durations: Optional[Dict[int, float]] = None,
    ):
        if step_s <= 0 or sample_interval_s <= 0:
            raise ValueError("step_s and sample_interval_s must be positive")
        self.scenario = scenario
        self.scheme = scheme
        self.power_model = power_model
        self.step_s = step_s
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.baseline_durations = baseline_durations or {}
        self._rng = np.random.default_rng(seed)

        soi = scheme.soi
        if scheme.idealized_transitions:
            soi = SoIConfig(idle_timeout_s=0.0, wake_up_time_s=0.0)
        self.gateways: Dict[int, Gateway] = {
            g: Gateway(
                gateway_id=g,
                backhaul_bps=scenario.wireless.backhaul_bps,
                soi=soi,
                sleep_enabled=scheme.sleep_enabled,
                load_window_s=scheme.bh2.load_window_s,
                initially_sleeping=scheme.sleep_enabled,
            )
            for g in range(scenario.num_gateways)
        }
        self.dslam = Dslam(
            config=self._dslam_config(),
            line_ports=dict(scenario.gateway_port),
        )
        self.channel = WirelessChannel(
            home_capacity_bps=scenario.wireless.home_capacity_bps,
            neighbour_capacity_bps=scenario.wireless.neighbour_capacity_bps,
            seed=seed,
        )
        self.scheduler = ReferenceFlowScheduler(backhaul_bps=scenario.wireless.backhaul_bps)

        self.selected_gateway: Dict[int, int] = dict(scenario.trace.home_gateway)
        self.fallback_gateway: Dict[int, Optional[int]] = {c: None for c in self.selected_gateway}
        self.terminals: Dict[int, BH2Terminal] = {}
        if scheme.aggregation is AggregationKind.BH2:
            for client, home in scenario.trace.home_gateway.items():
                self.terminals[client] = BH2Terminal(
                    client_id=client,
                    home_gateway=home,
                    reachable_gateways=scenario.topology.reachable[client],
                    config=scheme.bh2,
                    rng=np.random.default_rng(self._rng.integers(2**31 - 1)),
                )
        self._optimal_solver = GreedyAggregationSolver()
        self._next_optimal_at = 0.0
        self._optimal_online: Set[int] = set()

        self._arrivals: List[Flow] = scenario.trace.all_flows()
        self._arrival_index = 0
        self._upcoming_demand: Dict[int, Dict[int, float]] = {}
        if scheme.aggregation is AggregationKind.OPTIMAL:
            self._upcoming_demand = self._precompute_period_demand()

        self.energy = EnergyAccumulator(
            interval_seconds=sample_interval_s, horizon=scenario.trace.duration
        )
        self._samples: List[Tuple[float, int, int, int, int]] = []
        self.steps_taken = 0

    # ------------------------------------------------------------------
    def _dslam_config(self) -> DslamConfig:
        base = self.scenario.dslam
        if self.scheme.switching is SwitchingKind.NONE:
            return base.with_switch(None, full=False)
        if self.scheme.switching is SwitchingKind.FULL:
            return base.with_switch(None, full=True)
        return base.with_switch(base.switch_size or 4, full=False)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None):
        horizon = self.scenario.trace.duration if until is None else min(
            until, self.scenario.trace.duration
        )
        now = 0.0
        next_sample = 0.0
        while now < horizon:
            if now >= next_sample:
                self._record_sample(now)
                next_sample += self.sample_interval_s
            dt = self._next_dt(now, next_sample, horizon)
            self._admit_arrivals(now)
            if self.scheme.aggregation is AggregationKind.BH2:
                self._run_bh2_decisions(now)
            elif self.scheme.aggregation is AggregationKind.OPTIMAL and now >= self._next_optimal_at:
                self._run_optimal(now)
                self._next_optimal_at += self.scheme.optimal_period_s
            self._serve_flows(now, dt)
            self._step_gateways(now, dt)
            self._update_dslam()
            self._charge_energy(now, dt)
            now += dt
            self.steps_taken += 1
        self._record_sample(min(now, horizon))
        return self._build_result(horizon)

    # ------------------------------------------------------------------
    def _admit_arrivals(self, now: float) -> None:
        while (
            self._arrival_index < len(self._arrivals)
            and self._arrivals[self._arrival_index].start_time <= now
        ):
            flow = self._arrivals[self._arrival_index]
            self._arrival_index += 1
            self._route_flow(flow, now)

    def _route_flow(self, flow: Flow, now: float) -> None:
        client = flow.client_id
        gateway_id = self._routing_gateway(client, now)
        home = self.scenario.trace.home_gateway[client]
        is_home = gateway_id == home
        capacity = self.channel.capacity(client, gateway_id, is_home)
        active = ActiveFlow(flow=flow, gateway_id=gateway_id, wireless_capacity_bps=capacity)
        self.scheduler.admit(active)
        gateway = self.gateways[gateway_id]
        if gateway.is_sleeping:
            gateway.request_wake(now)
        gateway.touch(now)

    def _routing_gateway(self, client: int, now: float) -> int:
        home = self.scenario.trace.home_gateway[client]
        selected = self.selected_gateway.get(client, home)
        gateway = self.gateways[selected]
        if gateway.is_online:
            self.fallback_gateway[client] = None
            return selected
        if selected == home:
            return home
        if gateway.is_waking:
            fallback = self.fallback_gateway.get(client)
            if fallback is not None and self.gateways[fallback].is_online:
                return fallback
            return selected
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            alternative = self._best_online_gateway(client)
            if alternative is not None:
                self.selected_gateway[client] = alternative
                return alternative
        self.selected_gateway[client] = home
        self.fallback_gateway[client] = None
        return home

    def _best_online_gateway(self, client: int) -> Optional[int]:
        candidates = [
            g
            for g in self.scenario.topology.reachable[client]
            if self.gateways[g].is_online
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda g: self.gateways[g].utilization(self._now_hint))

    # ------------------------------------------------------------------
    def _run_bh2_decisions(self, now: float) -> None:
        due = [t for t in self.terminals.values() if t.decision_due(now)]
        if not due:
            return
        observations = self._gateway_observations(now)
        clients_with_flows = {f.client_id for f in self.scheduler.active_flows}
        for terminal in due:
            previous = terminal.current_gateway
            decision = terminal.decide(now, observations)
            client = terminal.client_id
            if decision.selected_gateway != previous:
                if decision.wake_home and client in clients_with_flows:
                    self.gateways[terminal.home_gateway].request_wake(now)
                    if self.gateways[previous].is_online:
                        self.fallback_gateway[client] = previous
                else:
                    self.fallback_gateway[client] = None
            self.selected_gateway[client] = decision.selected_gateway

    def _gateway_observations(self, now: float) -> Dict[int, GatewayObservation]:
        observations = {}
        for gateway_id, gateway in self.gateways.items():
            observations[gateway_id] = GatewayObservation(
                gateway_id=gateway_id,
                online=gateway.is_online,
                load=gateway.utilization(now) if gateway.is_online else 0.0,
            )
        return observations

    def _precompute_period_demand(self) -> Dict[int, Dict[int, float]]:
        period = self.scheme.optimal_period_s
        demand: Dict[int, Dict[int, float]] = {}
        for flow in self._arrivals:
            index = int(flow.start_time // period)
            bucket = demand.setdefault(index, {})
            bucket[flow.client_id] = bucket.get(flow.client_id, 0.0) + flow.size_bytes * 8.0 / period
        return demand

    def _run_optimal(self, now: float) -> None:
        period_index = int(now // self.scheme.optimal_period_s)
        demands = dict(self._upcoming_demand.get(period_index, {}))
        for client, backlog in self.scheduler.client_demand_bps(
            horizon_s=self.scheme.optimal_period_s
        ).items():
            demands[client] = demands.get(client, 0.0) + backlog
        if not demands:
            self._optimal_online = set()
            return
        cap = self.scenario.wireless.backhaul_bps
        demands = {c: min(d, cap) for c, d in demands.items()}
        topology = self.scenario.topology
        wireless: Dict[Tuple[int, int], float] = {}
        for client in demands:
            home = topology.home_gateway[client]
            for gateway in topology.reachable[client]:
                wireless[(client, gateway)] = self.channel.capacity(
                    client, gateway, gateway == home
                )
        problem = AggregationProblem(
            demands_bps=demands,
            capacities_bps={
                g: self.scenario.wireless.backhaul_bps for g in range(self.scenario.num_gateways)
            },
            wireless_bps=wireless,
            backup=self.scheme.bh2.backup,
            max_utilization=self.scheme.optimal_max_utilization,
        )
        solution = self._optimal_solver.solve(problem)
        self._optimal_online = set(solution.online_gateways)
        for gateway_id in solution.online_gateways:
            gateway = self.gateways[gateway_id]
            if gateway.is_sleeping:
                gateway.request_wake(now)
            gateway.touch(now)
        for flow in self.scheduler.active_flows:
            client = flow.client_id
            primary = solution.primary_gateway(client)
            if primary is not None and primary != flow.gateway_id:
                home = topology.home_gateway[client]
                flow.gateway_id = primary
                flow.wireless_capacity_bps = self.channel.capacity(
                    client, primary, primary == home
                )
        for client in demands:
            primary = solution.primary_gateway(client)
            if primary is not None:
                self.selected_gateway[client] = primary

    # ------------------------------------------------------------------
    def _serve_flows(self, now: float, dt: float) -> None:
        online = {g for g, gw in self.gateways.items() if gw.is_online}
        served, _completed = self.scheduler.step(now, dt, online)
        for gateway_id, bits in served.items():
            if bits > 0:
                self.gateways[gateway_id].record_traffic(bits, now + dt)

    def _step_gateways(self, now: float, dt: float) -> None:
        pending = self.scheduler.gateways_with_traffic()
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            pending = pending | self._optimal_online
        end = now + dt
        for gateway_id, gateway in self.gateways.items():
            gateway.step(end, dt, has_pending_traffic=gateway_id in pending)

    def _update_dslam(self) -> None:
        line_active = {
            g: not gw.is_sleeping for g, gw in self.gateways.items()
        }
        if self.dslam.mode is SwitchingMode.FIXED:
            return
        if self.scheme.idealized_transitions:
            movable = set(self.gateways)
        else:
            movable = {g for g, gw in self.gateways.items() if not gw.is_online}
        self.dslam.rewire(line_active, movable)

    def _charge_energy(self, now: float, dt: float) -> None:
        active = sum(1 for gw in self.gateways.values() if gw.state is PowerState.ACTIVE)
        waking = sum(1 for gw in self.gateways.values() if gw.state is PowerState.WAKING)
        modems_on = active + waking
        cards_on = len(self.dslam.online_cards(
            [g for g, gw in self.gateways.items() if not gw.is_sleeping]
        ))
        model = self.power_model
        self.energy.charge_at("gateway", model.user_side_power(active, waking), now, dt)
        self.energy.charge_at("isp_modem", modems_on * model.isp_modem.active_w, now, dt)
        self.energy.charge_at("line_card", cards_on * model.line_card.active_w, now, dt)
        self.energy.charge_at("dslam_shelf", model.dslam_shelf.active_w, now, dt)

    def _record_sample(self, now: float) -> None:
        active = sum(1 for gw in self.gateways.values() if gw.state is PowerState.ACTIVE)
        waking = sum(1 for gw in self.gateways.values() if gw.state is PowerState.WAKING)
        not_sleeping = [g for g, gw in self.gateways.items() if not gw.is_sleeping]
        cards_on = len(self.dslam.online_cards(not_sleeping))
        self._samples.append((now, active + waking, waking, len(not_sleeping), cards_on))

    # ------------------------------------------------------------------
    def _next_dt(self, now: float, next_sample: float, horizon: float) -> float:
        self._now_hint = now
        dt = self.step_s
        if self.scheduler.active_flows:
            return min(dt, horizon - now)
        candidates = [now + self.MAX_IDLE_SKIP_S, next_sample if next_sample > now else now + dt, horizon]
        if self._arrival_index < len(self._arrivals):
            candidates.append(self._arrivals[self._arrival_index].start_time)
        if self.scheme.aggregation is AggregationKind.OPTIMAL:
            candidates.append(self._next_optimal_at if self._next_optimal_at > now else now + dt)
        for gateway in self.gateways.values():
            transition = gateway.next_transition_time()
            if transition is not None and transition > now:
                candidates.append(transition)
        target = min(c for c in candidates if c > now)
        return max(self.step_s, min(target - now, self.MAX_IDLE_SKIP_S, horizon - now))

    # ------------------------------------------------------------------
    def _build_result(self, horizon: float):
        from repro.simulation.simulator import SimulationResult

        samples = np.array(self._samples, dtype=float)
        energy_times, energy_total = self.energy.timeseries()
        _times, energy_isp = self.energy.timeseries(
            categories=("isp_modem", "line_card", "dslam_shelf")
        )
        model = self.power_model
        baseline_power = model.no_sleep_power(
            num_gateways=self.scenario.num_gateways,
            num_line_cards=self.scenario.dslam.num_line_cards,
        )
        baseline_isp = model.isp_side_power(
            modems_online=self.scenario.num_gateways,
            line_cards_online=self.scenario.dslam.num_line_cards,
        )
        return SimulationResult(
            scheme_name=self.scheme.name,
            duration=horizon,
            num_gateways=self.scenario.num_gateways,
            num_line_cards=self.scenario.dslam.num_line_cards,
            sample_times=samples[:, 0] if samples.size else np.array([]),
            online_gateways=samples[:, 1] if samples.size else np.array([]),
            waking_gateways=samples[:, 2] if samples.size else np.array([]),
            online_modems=samples[:, 3] if samples.size else np.array([]),
            online_line_cards=samples[:, 4] if samples.size else np.array([]),
            energy=self.energy.breakdown(),
            energy_series_times=np.array(energy_times, dtype=float),
            energy_series_total_j=np.array(energy_total, dtype=float),
            energy_series_isp_j=np.array(energy_isp, dtype=float),
            flow_records=self.scheduler.records(baselines=self.baseline_durations),
            gateway_online_seconds={
                g: gw.online_seconds + gw.waking_seconds for g, gw in self.gateways.items()
            },
            baseline_power_w=baseline_power,
            baseline_isp_power_w=baseline_isp,
            steps_taken=self.steps_taken,
        )

    _now_hint: float = 0.0


def run_scheme_reference(
    scenario: Scenario,
    scheme: SchemeConfig,
    seed: int = 0,
    step_s: float = 1.0,
    sample_interval_s: float = 60.0,
    until: Optional[float] = None,
    power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
    baseline_durations: Optional[Dict[int, float]] = None,
):
    """Run one scheme once over a scenario with the preserved seed kernel."""
    simulator = ReferenceAccessNetworkSimulator(
        scenario=scenario,
        scheme=scheme,
        power_model=power_model,
        step_s=step_s,
        sample_interval_s=sample_interval_s,
        seed=seed,
        baseline_durations=baseline_durations,
    )
    return simulator.run(until=until)
