"""Energy accounting over a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: Category labels used by the simulator when charging energy.  With a
#: heterogeneous fleet the user side is split per gateway generation into
#: ``gateway:<generation>`` categories instead of the single ``gateway``.
USER_SIDE_CATEGORIES = ("gateway",)
USER_SIDE_PREFIX = "gateway:"
ISP_SIDE_CATEGORIES = ("isp_modem", "line_card", "dslam_shelf")


@dataclass
class EnergyBreakdown:
    """Energy totals (joules) split by device category."""

    per_category_j: Dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        """Total energy across all categories."""
        return sum(self.per_category_j.values())

    @property
    def user_side_j(self) -> float:
        """Energy charged to user-side devices (including the per-generation
        ``gateway:<generation>`` categories of heterogeneous fleets)."""
        return sum(
            joules
            for category, joules in self.per_category_j.items()
            if category in USER_SIDE_CATEGORIES or category.startswith(USER_SIDE_PREFIX)
        )

    @property
    def isp_side_j(self) -> float:
        """Energy charged to ISP-side devices."""
        return sum(self.per_category_j.get(c, 0.0) for c in ISP_SIDE_CATEGORIES)

    @property
    def total_kwh(self) -> float:
        """Total energy in kWh."""
        return self.total_j / 3.6e6

    def savings_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional savings relative to a baseline run."""
        if baseline.total_j <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.total_j / baseline.total_j

    def isp_share_of_savings(self, baseline: "EnergyBreakdown") -> float:
        """Fraction of the total savings that comes from the ISP side (Fig. 8)."""
        saved_total = baseline.total_j - self.total_j
        if saved_total <= 0:
            return 0.0
        saved_isp = baseline.isp_side_j - self.isp_side_j
        return max(0.0, saved_isp / saved_total)

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged = dict(self.per_category_j)
        for category, joules in other.per_category_j.items():
            merged[category] = merged.get(category, 0.0) + joules
        return EnergyBreakdown(per_category_j=merged)


class EnergyAccumulator:
    """Integrates power over time, per device category.

    The simulator calls :meth:`charge` whenever a device spends ``duration``
    seconds drawing ``power_w`` watts.  A parallel per-interval time series
    can be recorded with :meth:`charge_at` for the time-resolved figures
    (Fig. 6 and Fig. 8).
    """

    def __init__(self, interval_seconds: float = 60.0, horizon: float | None = None):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.horizon = horizon
        self._totals: Dict[str, float] = {}
        # time-bin index -> category -> joules
        self._series: Dict[int, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def charge(self, category: str, power_w: float, duration_s: float) -> None:
        """Charge ``power_w * duration_s`` joules to ``category``."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        if duration_s == 0 or power_w == 0:
            return
        self._totals[category] = self._totals.get(category, 0.0) + power_w * duration_s

    def charge_at(self, category: str, power_w: float, start_s: float, duration_s: float) -> None:
        """Charge energy and attribute it to time bins starting at ``start_s``."""
        if start_s < 0:
            raise ValueError("start_s must be non-negative")
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        if duration_s == 0 or power_w == 0:
            return
        self.charge(category, power_w, duration_s)
        end_s = start_s + duration_s
        if self.horizon is not None:
            end_s = min(end_s, self.horizon)
        t = start_s
        while t < end_s:
            bin_index = int(t // self.interval_seconds)
            bin_end = (bin_index + 1) * self.interval_seconds
            chunk = min(end_s, bin_end) - t
            bin_bucket = self._series.setdefault(bin_index, {})
            bin_bucket[category] = bin_bucket.get(category, 0.0) + power_w * chunk
            t += chunk

    # ------------------------------------------------------------------
    def breakdown(self) -> EnergyBreakdown:
        """Energy totals accumulated so far."""
        return EnergyBreakdown(per_category_j=dict(self._totals))

    def timeseries(self, categories: Iterable[str] | None = None) -> Tuple[List[float], List[float]]:
        """Per-interval energy (joules), optionally restricted to categories.

        Returns ``(times, joules)`` where ``times`` are interval start times.
        """
        if not self._series:
            return [], []
        max_bin = max(self._series)
        times = [b * self.interval_seconds for b in range(max_bin + 1)]
        values = []
        wanted = set(categories) if categories is not None else None
        for b in range(max_bin + 1):
            bucket = self._series.get(b, {})
            if wanted is None:
                values.append(sum(bucket.values()))
            else:
                values.append(sum(j for c, j in bucket.items() if c in wanted))
        return times, values
