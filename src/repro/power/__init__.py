"""Power and energy models of access-network devices.

Power figures come directly from the paper's measurements (Sec. 5.1):
a Telsey ADSL gateway draws about 9 W almost independently of load, a
Netgear wireless router about 5 W, an ISP-side DSL modem about 1 W, a DSL
line card typically 98 W and the DSLAM shelf 21 W.
"""

from repro.power.models import (
    DevicePower,
    PowerState,
    AccessNetworkPowerModel,
    DEFAULT_POWER_MODEL,
)
from repro.power.energy import EnergyAccumulator, EnergyBreakdown

__all__ = [
    "PowerState",
    "DevicePower",
    "AccessNetworkPowerModel",
    "DEFAULT_POWER_MODEL",
    "EnergyAccumulator",
    "EnergyBreakdown",
]
