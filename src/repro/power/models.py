"""Device power profiles and the aggregate access-network power model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PowerState(enum.Enum):
    """Operating state of a sleep-capable access device."""

    ACTIVE = "active"
    SLEEPING = "sleeping"
    WAKING = "waking"

    @property
    def is_online(self) -> bool:
        """Whether the device can carry traffic in this state."""
        return self is PowerState.ACTIVE


@dataclass(frozen=True)
class DevicePower:
    """Power draw of one device in each operating state (watts).

    Access devices are not energy proportional (Sec. 2.2): the paper
    measures less than 10 % variation across the load range, so a single
    ``active_w`` figure per device is an accurate model.

    ``wake_w`` is the draw during the boot/re-synchronisation period.  The
    default ``wake_w=None`` means *boot at full power*: the waking draw
    falls back to ``active_w`` (the paper's devices have no separate boot
    rail), including when ``active_w`` is overridden from the 9 W default.
    Set ``wake_w`` explicitly for hardware whose boot burst differs from
    its steady active draw (e.g. multi-level deep-sleep devices).
    """

    active_w: float
    sleep_w: float = 0.0
    wake_w: float | None = None

    def __post_init__(self) -> None:
        if self.active_w < 0 or self.sleep_w < 0:
            raise ValueError("power draws must be non-negative")
        if self.wake_w is not None and self.wake_w < 0:
            raise ValueError("wake power must be non-negative")

    @property
    def waking_w(self) -> float:
        """Effective waking draw: ``wake_w`` when set, else the
        ``active_w`` fallback (devices boot at full power)."""
        return self.wake_w if self.wake_w is not None else self.active_w

    def power_in(self, state: PowerState) -> float:
        """Power draw (watts) in a given :class:`PowerState`.

        ``WAKING`` resolves through :attr:`waking_w`, i.e. it falls back to
        ``active_w`` when no explicit ``wake_w`` was configured.
        """
        if state is PowerState.ACTIVE:
            return self.active_w
        if state is PowerState.SLEEPING:
            return self.sleep_w
        return self.wake_w if self.wake_w is not None else self.active_w


@dataclass(frozen=True)
class AccessNetworkPowerModel:
    """Power model of the full access chain for one DSLAM's worth of users.

    The user side of each subscriber is a *gateway* (integrated modem +
    wireless AP + router).  The ISP side has one terminating *modem* per
    line, *line cards* hosting the modems' shared circuitry, and the DSLAM
    *shelf* which is never powered off.
    """

    gateway: DevicePower = field(default_factory=lambda: DevicePower(active_w=9.0, sleep_w=0.0))
    wireless_router: DevicePower = field(default_factory=lambda: DevicePower(active_w=5.0, sleep_w=0.0))
    isp_modem: DevicePower = field(default_factory=lambda: DevicePower(active_w=1.0, sleep_w=0.0))
    line_card: DevicePower = field(default_factory=lambda: DevicePower(active_w=98.0, sleep_w=0.0))
    dslam_shelf: DevicePower = field(default_factory=lambda: DevicePower(active_w=21.0, sleep_w=21.0))

    # ------------------------------------------------------------------
    def user_side_power(self, gateways_online: int, gateways_waking: int = 0) -> float:
        """Instantaneous power of the user side (watts)."""
        if min(gateways_online, gateways_waking) < 0:
            raise ValueError("device counts must be non-negative")
        return (
            gateways_online * self.gateway.power_in(PowerState.ACTIVE)
            + gateways_waking * self.gateway.power_in(PowerState.WAKING)
        )

    def isp_side_power(
        self,
        modems_online: int,
        line_cards_online: int,
        modems_waking: int = 0,
        line_cards_waking: int = 0,
        shelf_online: bool = True,
    ) -> float:
        """Instantaneous power of the ISP side (watts)."""
        counts = (modems_online, line_cards_online, modems_waking, line_cards_waking)
        if min(counts) < 0:
            raise ValueError("device counts must be non-negative")
        power = (
            modems_online * self.isp_modem.power_in(PowerState.ACTIVE)
            + modems_waking * self.isp_modem.power_in(PowerState.WAKING)
            + line_cards_online * self.line_card.power_in(PowerState.ACTIVE)
            + line_cards_waking * self.line_card.power_in(PowerState.WAKING)
        )
        if shelf_online:
            power += self.dslam_shelf.active_w
        return power

    def no_sleep_power(self, num_gateways: int, num_line_cards: int) -> float:
        """Power of today's always-on operation (the paper's baseline)."""
        return self.user_side_power(num_gateways) + self.isp_side_power(
            modems_online=num_gateways, line_cards_online=num_line_cards
        )

    def total_power(
        self,
        gateways_online: int,
        modems_online: int,
        line_cards_online: int,
        gateways_waking: int = 0,
        modems_waking: int = 0,
        line_cards_waking: int = 0,
    ) -> float:
        """Instantaneous total power of the access chain (watts)."""
        return self.user_side_power(gateways_online, gateways_waking) + self.isp_side_power(
            modems_online=modems_online,
            line_cards_online=line_cards_online,
            modems_waking=modems_waking,
            line_cards_waking=line_cards_waking,
        )


#: The power model with the paper's measured figures.
DEFAULT_POWER_MODEL = AccessNetworkPowerModel()

#: Number of DSL subscribers world-wide used in the paper's extrapolation.
WORLD_DSL_SUBSCRIBERS = 320_000_000

#: Hours in a (non-leap) year, used for TWh extrapolations.
HOURS_PER_YEAR = 365 * 24


def world_wide_savings_twh(
    saving_fraction: float,
    per_subscriber_power_w: float | None = None,
    model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
    ports_per_card: int = 48,
) -> float:
    """Extrapolate a relative saving to all DSL subscribers (TWh per year).

    ``per_subscriber_power_w`` defaults to the always-on per-subscriber power
    implied by the model: one gateway, one ISP modem, a 1/ports share of a
    line card and a 1/1000 share of a shelf.  The paper's own extrapolation
    arrives at roughly 33 TWh/year for a 66 % saving.
    """
    if not 0 <= saving_fraction <= 1:
        raise ValueError("saving_fraction must lie in [0, 1]")
    if per_subscriber_power_w is None:
        per_subscriber_power_w = (
            model.gateway.active_w
            + model.isp_modem.active_w
            + model.line_card.active_w / ports_per_card
            + model.dslam_shelf.active_w / 1000.0
        )
    total_w = per_subscriber_power_w * WORLD_DSL_SUBSCRIBERS * saving_fraction
    return total_w * HOURS_PER_YEAR / 1e12
