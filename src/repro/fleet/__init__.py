"""Heterogeneous gateway fleets and mid-trace churn dynamics.

``repro.fleet`` makes the simulated population *dynamic and mixed*:

* :class:`~repro.fleet.profile.FleetProfile` assigns per-gateway
  :class:`~repro.power.models.DevicePower` generations (legacy 9 W,
  efficient 5 W, multi-level deep-sleep devices with their own wake
  durations), and
* :class:`~repro.fleet.churn.ChurnTimeline` schedules mid-trace events —
  gateway power-on/decommission/transient failure and client
  subscribe/unsubscribe — executed by the kernel at exact instants.

The homogeneous default (:data:`~repro.fleet.profile.HOMOGENEOUS` plus
:data:`~repro.fleet.churn.EMPTY_TIMELINE`) reproduces the static uniform
deployment of the paper bit for bit.
"""

from repro.fleet.churn import (
    CHURN_PATTERNS,
    ChurnAction,
    ChurnEvent,
    ChurnKind,
    ChurnTimeline,
    EMPTY_TIMELINE,
    build_churn,
    churn_pattern_names,
)
from repro.fleet.profile import (
    FLEETS,
    GENERATIONS,
    FleetProfile,
    GatewayGeneration,
    HOMOGENEOUS,
    fleet,
    fleet_names,
    register_fleet,
    register_generation,
)

__all__ = [
    "CHURN_PATTERNS",
    "ChurnAction",
    "ChurnEvent",
    "ChurnKind",
    "ChurnTimeline",
    "EMPTY_TIMELINE",
    "build_churn",
    "churn_pattern_names",
    "FLEETS",
    "GENERATIONS",
    "FleetProfile",
    "GatewayGeneration",
    "HOMOGENEOUS",
    "fleet",
    "fleet_names",
    "register_fleet",
    "register_generation",
]
