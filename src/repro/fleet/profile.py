"""Heterogeneous gateway fleets: device generations and their mix.

The paper's evaluation assumes every gateway is the same 9 W device.  Real
access networks deploy *mixed generations*: legacy boxes that draw full
power even while booting, newer efficient hardware with a real (non-zero
but small) standby draw, and multi-level deep-sleep devices in the spirit
of the PON power-state work, whose deep sleep is nearly free but whose
wake-up is long and power-hungry.

A :class:`GatewayGeneration` names one hardware generation — a
:class:`~repro.power.models.DevicePower` triple plus an optional
generation-specific wake-up duration.  A :class:`FleetProfile` describes a
whole neighbourhood's mix as ``(generation name, weight)`` pairs and turns
it into a deterministic per-gateway assignment; the default
:data:`HOMOGENEOUS` profile reproduces the paper's uniform 9 W fleet
exactly (the simulator keeps its bit-identical fast path for it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.power.models import DevicePower


@dataclass(frozen=True)
class GatewayGeneration:
    """One gateway hardware generation.

    ``wake_up_time_s`` overrides the scheme's Sleep-on-Idle wake duration
    for devices of this generation (``None`` keeps the scheme default);
    deep-sleep devices trade a longer, hungrier boot for a near-zero
    standby draw.
    """

    name: str
    power: DevicePower
    wake_up_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("generation needs a name")
        if self.wake_up_time_s is not None and self.wake_up_time_s < 0:
            raise ValueError("wake_up_time_s must be non-negative")

    def canonical(self) -> List[object]:
        """Digest-relevant physics of this generation (name excluded)."""
        return [
            self.power.active_w,
            self.power.sleep_w,
            self.power.wake_w,
            self.wake_up_time_s,
        ]


#: The generation registry, keyed by generation name.
GENERATIONS: Dict[str, GatewayGeneration] = {}


def register_generation(generation: GatewayGeneration) -> GatewayGeneration:
    """Register a generation under its name (overwriting any previous one)."""
    GENERATIONS[generation.name] = generation
    return generation


# The paper's measured device: 9 W flat, boots at full power (wake_w=None
# falls back to active_w — see DevicePower.waking_w).
register_generation(GatewayGeneration(
    name="legacy-9w",
    power=DevicePower(active_w=9.0, sleep_w=0.0),
))

# A newer integrated gateway: lower active draw, a real (small) standby
# draw, a slightly cheaper and much faster boot.
register_generation(GatewayGeneration(
    name="efficient-5w",
    power=DevicePower(active_w=5.0, sleep_w=0.3, wake_w=6.0),
    wake_up_time_s=30.0,
))

# Multi-level deep-sleep hardware (PON-style): deep sleep is nearly free,
# but the boot/re-synchronisation burst is long and draws above active.
register_generation(GatewayGeneration(
    name="deepsleep-7w",
    power=DevicePower(active_w=7.0, sleep_w=0.1, wake_w=8.5),
    wake_up_time_s=90.0,
))


@dataclass(frozen=True)
class FleetProfile:
    """A deterministic mix of gateway generations for one deployment.

    ``mix`` holds ``(generation name, weight)`` pairs; weights are
    normalised over their sum.  ``assignment_seed`` scrambles which
    concrete gateway gets which generation — the per-generation *counts*
    follow the weights by largest remainder, so the mix is exact rather
    than sampled.
    """

    name: str = "homogeneous"
    mix: Tuple[Tuple[str, float], ...] = (("legacy-9w", 1.0),)
    assignment_seed: int = 0

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("fleet mix cannot be empty")
        for generation_name, weight in self.mix:
            if generation_name not in GENERATIONS:
                raise ValueError(
                    f"unknown gateway generation {generation_name!r}; "
                    f"known: {', '.join(sorted(GENERATIONS))}"
                )
            if weight <= 0:
                raise ValueError(f"weight of {generation_name!r} must be positive")
        names = [generation_name for generation_name, _weight in self.mix]
        if len(set(names)) != len(names):
            raise ValueError("a generation appears twice in the mix")

    # ------------------------------------------------------------------
    @property
    def generations(self) -> List[GatewayGeneration]:
        """The generations of the mix, in declaration order."""
        return [GENERATIONS[name] for name, _weight in self.mix]

    @property
    def generation_names(self) -> List[str]:
        """Names of the mix's generations, in declaration order."""
        return [name for name, _weight in self.mix]

    def is_uniform(self, power: DevicePower) -> bool:
        """Whether every gateway is a ``power`` device with default wake time.

        The simulator uses this to keep its bit-identical homogeneous fast
        path: a profile that is uniform *in the power model's own gateway
        device* needs no per-gateway power arrays at all.
        """
        if len(self.mix) != 1:
            return False
        generation = GENERATIONS[self.mix[0][0]]
        return generation.power == power and generation.wake_up_time_s is None

    # ------------------------------------------------------------------
    def counts(self, num_gateways: int) -> List[int]:
        """Exact per-generation device counts by largest remainder."""
        if num_gateways <= 0:
            raise ValueError("num_gateways must be positive")
        total_weight = sum(weight for _name, weight in self.mix)
        quotas = [num_gateways * weight / total_weight for _name, weight in self.mix]
        counts = [int(q) for q in quotas]
        remainders = [q - c for q, c in zip(quotas, counts)]
        short = num_gateways - sum(counts)
        # Ties broken by declaration order (stable sort on -remainder).
        for index in sorted(range(len(counts)), key=lambda i: -remainders[i])[:short]:
            counts[index] += 1
        return counts

    def assignment(self, num_gateways: int) -> List[int]:
        """Generation index (into the mix) of every gateway, deterministic."""
        counts = self.counts(num_gateways)
        block = [
            index for index, count in enumerate(counts) for _ in range(count)
        ]
        order = np.random.default_rng(self.assignment_seed).permutation(num_gateways)
        assignment = [0] * num_gateways
        for position, generation_index in zip(order, block):
            assignment[int(position)] = generation_index
        return assignment

    def device_arrays(
        self, num_gateways: int, default_wake_time_s: float
    ) -> Tuple[List[int], List[float], List[float], List[float], List[float]]:
        """Per-gateway ``(generation, active_w, sleep_w, wake_w, wake_time_s)``.

        ``wake_w`` is the *effective* waking draw (the ``active_w`` fallback
        of :meth:`DevicePower.power_in` already applied); wake times fall
        back to ``default_wake_time_s`` for generations without an override.
        """
        generations = self.generations
        assignment = self.assignment(num_gateways)
        active_w, sleep_w, wake_w, wake_time = [], [], [], []
        for generation_index in assignment:
            generation = generations[generation_index]
            active_w.append(generation.power.active_w)
            sleep_w.append(generation.power.sleep_w)
            wake_w.append(generation.power.waking_w)
            wake_time.append(
                generation.wake_up_time_s
                if generation.wake_up_time_s is not None
                else default_wake_time_s
            )
        return assignment, active_w, sleep_w, wake_w, wake_time

    def canonical(self) -> Dict[str, object]:
        """Digest-relevant description: generation physics, weights, seed.

        Generation *names* are presentation; the physics (power triple and
        wake time) are inlined so renaming a generation preserves cached
        digests and editing its numbers invalidates them.
        """
        total_weight = sum(weight for _name, weight in self.mix)
        return {
            "mix": [
                [weight / total_weight] + GENERATIONS[name].canonical()
                for name, weight in self.mix
            ],
            "assignment_seed": self.assignment_seed,
        }


#: The paper's uniform fleet: every gateway is a legacy 9 W device.
HOMOGENEOUS = FleetProfile()

#: The fleet-profile registry, keyed by profile name.
FLEETS: Dict[str, FleetProfile] = {}


def register_fleet(profile: FleetProfile) -> FleetProfile:
    """Register a fleet profile under its name (overwriting any previous)."""
    FLEETS[profile.name] = profile
    return profile


register_fleet(HOMOGENEOUS)

register_fleet(FleetProfile(
    name="legacy-efficient",
    mix=(("legacy-9w", 0.5), ("efficient-5w", 0.5)),
    assignment_seed=11,
))

register_fleet(FleetProfile(
    name="tri-mix",
    mix=(("legacy-9w", 0.4), ("efficient-5w", 0.4), ("deepsleep-7w", 0.2)),
    assignment_seed=12,
))

# Uniform but *not* the default device: exercises the per-gateway power
# path with a single generation (useful as a fleet-upgrade endpoint).
register_fleet(FleetProfile(
    name="efficient-only",
    mix=(("efficient-5w", 1.0),),
    assignment_seed=13,
))


def fleet(name: str) -> FleetProfile:
    """Look a fleet profile up by name."""
    try:
        return FLEETS[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet profile {name!r}; known: {', '.join(FLEETS)}"
        ) from None


def fleet_names() -> List[str]:
    """Registered fleet-profile names, in registration order."""
    return list(FLEETS)
