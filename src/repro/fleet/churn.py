"""Mid-trace fleet dynamics: a declarative timeline of churn events.

The paper's deployment is static: the same gateways and subscribers are
present for the whole trace.  A :class:`ChurnTimeline` lifts that
restriction declaratively — gateways power on (join) mid-trace, get
decommissioned, or fail transiently, and clients subscribe or cancel —
without touching the trace itself.  The simulator compiles the timeline
into primitive in/out-of-service *actions* executed at their exact
instants through the kernel's stretch/deadline machinery.

Semantics:

* An entity whose **first** event is a ``*_JOIN`` is absent from the start
  of the trace until that instant (a staged deployment); otherwise it is
  present from t=0.
* ``GATEWAY_LEAVE`` is permanent decommissioning; ``GATEWAY_FAIL`` is a
  transient outage of ``duration_s`` seconds after which the gateway is
  back in service (sleeping, ready to wake on demand).
* An out-of-service gateway draws **no power at all** (it is unplugged,
  not sleeping), ignores wake requests, and its flows are rescued onto a
  reachable in-service gateway (or dropped when none exists).
* An out-of-service client's trace arrivals are suppressed; its in-flight
  flows are cancelled the moment it unsubscribes.
* ``DSLAM_FAIL`` is a *correlated* outage: every gateway of the
  deployment (they all hang off one DSLAM) goes out of service at the
  same instant and recovers together ``duration_s`` seconds later, with
  the same rescue/drop semantics as per-gateway failures — during the
  window no rescue target exists, so in-flight flows are dropped and new
  arrivals are lost.  The event is entity-less; :meth:`compile` expands
  it against the concrete gateway population.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple


class ChurnKind(enum.Enum):
    """What happens at a churn event."""

    GATEWAY_JOIN = "gateway-join"
    GATEWAY_LEAVE = "gateway-leave"
    GATEWAY_FAIL = "gateway-fail"
    CLIENT_JOIN = "client-join"
    CLIENT_LEAVE = "client-leave"
    #: Correlated whole-DSLAM outage: all gateways fail/recover together.
    DSLAM_FAIL = "dslam-fail"

    @property
    def is_gateway(self) -> bool:
        """Whether the compiled actions flip *gateway* service state."""
        return self in (
            ChurnKind.GATEWAY_JOIN,
            ChurnKind.GATEWAY_LEAVE,
            ChurnKind.GATEWAY_FAIL,
            ChurnKind.DSLAM_FAIL,
        )

    @property
    def is_broadcast(self) -> bool:
        """Whether the event targets the whole population (no entity id)."""
        return self is ChurnKind.DSLAM_FAIL


@dataclass(frozen=True)
class ChurnEvent:
    """One dated event of a churn timeline."""

    at_s: float
    kind: ChurnKind
    gateway_id: Optional[int] = None
    client_id: Optional[int] = None
    #: Outage length; ``GATEWAY_FAIL`` only.
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.kind.is_broadcast:
            if self.gateway_id is not None or self.client_id is not None:
                raise ValueError(f"{self.kind.value} events take no entity id")
        elif self.kind.is_gateway:
            if self.gateway_id is None or self.client_id is not None:
                raise ValueError(f"{self.kind.value} events need exactly a gateway_id")
        else:
            if self.client_id is None or self.gateway_id is not None:
                raise ValueError(f"{self.kind.value} events need exactly a client_id")
        if self.kind in (ChurnKind.GATEWAY_FAIL, ChurnKind.DSLAM_FAIL):
            if self.duration_s is None or self.duration_s <= 0:
                raise ValueError(f"{self.kind.value} events need a positive duration_s")
        elif self.duration_s is not None:
            raise ValueError(f"{self.kind.value} events take no duration_s")

    def canonical(self) -> List[object]:
        """Digest-stable rendering of the event."""
        return [self.at_s, self.kind.value, self.gateway_id, self.client_id, self.duration_s]


class ChurnAction(NamedTuple):
    """One compiled primitive: flip an entity in or out of service."""

    at_s: float
    seq: int
    kind: ChurnKind  # the originating event kind (JOIN/LEAVE/FAIL semantics)
    entity_id: int
    #: True flips the entity into service, False out of it.
    into_service: bool


@dataclass(frozen=True)
class ChurnTimeline:
    """An ordered set of churn events plus its compiled execution plan."""

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at_s))
        object.__setattr__(self, "events", ordered)
        self._validate_sequences()

    # ------------------------------------------------------------------
    def _validate_sequences(self) -> None:
        """Enforce a sane per-entity life cycle (present/absent alternation).

        Whole-DSLAM outage windows additionally must not overlap each other
        and must fall entirely inside an in-service stretch of every
        gateway the timeline mentions individually: the broadcast flips
        *every* gateway out and back, so a gateway that is absent, failed
        or transitioning inside the window would be double-flipped.
        """
        # (is_gateway, id) -> (present, busy_until) state machine.
        state: Dict[Tuple[bool, int], Tuple[bool, float]] = {}
        first_kind: Dict[Tuple[bool, int], ChurnKind] = {}
        #: Per-gateway-entity service transitions: (instant, into_service).
        service_changes: Dict[int, List[Tuple[float, bool]]] = {}
        initially_in_service: Dict[int, bool] = {}
        dslam_windows: List[Tuple[float, float]] = []
        for event in self.events:
            if event.kind.is_broadcast:
                dslam_windows.append(
                    (event.at_s, event.at_s + (event.duration_s or 0.0))
                )
                continue
            is_gateway = event.kind.is_gateway
            entity = event.gateway_id if is_gateway else event.client_id
            key = (is_gateway, entity)
            if key not in first_kind:
                first_kind[key] = event.kind
                initially_present = event.kind not in (
                    ChurnKind.GATEWAY_JOIN, ChurnKind.CLIENT_JOIN
                )
                state[key] = (initially_present, 0.0)
                if is_gateway:
                    initially_in_service[entity] = initially_present
                    service_changes[entity] = []
            present, busy_until = state[key]
            if event.at_s < busy_until:
                raise ValueError(
                    f"event at t={event.at_s} overlaps an earlier outage of "
                    f"{'gateway' if is_gateway else 'client'} {entity}"
                )
            if event.kind in (ChurnKind.GATEWAY_JOIN, ChurnKind.CLIENT_JOIN):
                if present:
                    raise ValueError(
                        f"{'gateway' if is_gateway else 'client'} {entity} joins "
                        f"at t={event.at_s} while already present"
                    )
                state[key] = (True, busy_until)
                if is_gateway:
                    service_changes[entity].append((event.at_s, True))
            elif event.kind in (ChurnKind.GATEWAY_LEAVE, ChurnKind.CLIENT_LEAVE):
                if not present:
                    raise ValueError(
                        f"{'gateway' if is_gateway else 'client'} {entity} leaves "
                        f"at t={event.at_s} while absent"
                    )
                state[key] = (False, busy_until)
                if is_gateway:
                    service_changes[entity].append((event.at_s, False))
            else:  # GATEWAY_FAIL: transient, entity stays present afterwards
                if not present:
                    raise ValueError(
                        f"gateway {entity} fails at t={event.at_s} while absent"
                    )
                recovery = event.at_s + (event.duration_s or 0.0)
                state[key] = (True, recovery)
                service_changes[entity].append((event.at_s, False))
                service_changes[entity].append((recovery, True))
        self._validate_dslam_windows(
            dslam_windows, initially_in_service, service_changes
        )

    @staticmethod
    def _validate_dslam_windows(
        windows: List[Tuple[float, float]],
        initially_in_service: Dict[int, bool],
        service_changes: Dict[int, List[Tuple[float, bool]]],
    ) -> None:
        previous_end = -1.0
        for start, end in sorted(windows):
            if start < previous_end:
                raise ValueError(
                    f"whole-DSLAM outage at t={start} overlaps an earlier one"
                )
            previous_end = end
        for gateway_id, changes in service_changes.items():
            # In-service intervals of this gateway, as [start, end) pieces.
            in_service = initially_in_service[gateway_id]
            piece_start = 0.0
            pieces: List[Tuple[float, float]] = []
            for instant, into_service in changes:
                if in_service and not into_service:
                    pieces.append((piece_start, instant))
                elif not in_service and into_service:
                    piece_start = instant
                in_service = into_service
            if in_service:
                pieces.append((piece_start, float("inf")))
            for start, end in windows:
                if not any(ps <= start and end < pe for ps, pe in pieces):
                    raise ValueError(
                        f"whole-DSLAM outage [{start}, {end}] overlaps churn of "
                        f"gateway {gateway_id}, which must be in service "
                        f"throughout the window"
                    )

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.events

    def has_gateway_churn(self) -> bool:
        """Whether any event (incl. broadcasts) flips gateway service state."""
        return any(e.kind.is_gateway for e in self.events)

    def gateway_ids(self) -> Set[int]:
        """Every gateway mentioned *individually* by the timeline."""
        return {e.gateway_id for e in self.events if e.gateway_id is not None}

    def client_ids(self) -> Set[int]:
        """Every client mentioned by the timeline."""
        return {e.client_id for e in self.events if e.client_id is not None}

    def initially_absent(self) -> Tuple[Set[int], Set[int]]:
        """``(gateways, clients)`` absent from t=0 (first event is a join)."""
        seen: Set[Tuple[bool, int]] = set()
        gateways: Set[int] = set()
        clients: Set[int] = set()
        for event in self.events:
            if event.kind.is_broadcast:
                continue
            is_gateway = event.kind.is_gateway
            entity = event.gateway_id if is_gateway else event.client_id
            key = (is_gateway, entity)
            if key in seen:
                continue
            seen.add(key)
            if event.kind is ChurnKind.GATEWAY_JOIN:
                gateways.add(entity)
            elif event.kind is ChurnKind.CLIENT_JOIN:
                clients.add(entity)
        return gateways, clients

    def compile(self, num_gateways: Optional[int] = None) -> List[ChurnAction]:
        """The primitive action plan, sorted by instant (ties in event order).

        A ``GATEWAY_FAIL`` expands into an out-of-service action at its
        instant plus an into-service recovery action ``duration_s`` later.
        A ``DSLAM_FAIL`` broadcast expands the same way *per gateway* of
        the concrete population, so ``num_gateways`` is required whenever
        the timeline contains one.
        """
        actions: List[ChurnAction] = []
        seq = 0
        for event in self.events:
            if event.kind is ChurnKind.DSLAM_FAIL:
                if num_gateways is None:
                    raise ValueError(
                        "compile() needs num_gateways to expand dslam-fail events"
                    )
                recovery = event.at_s + (event.duration_s or 0.0)
                for gateway_id in range(num_gateways):
                    actions.append(ChurnAction(
                        event.at_s, seq, event.kind, gateway_id, False,
                    ))
                    seq += 1
                for gateway_id in range(num_gateways):
                    actions.append(ChurnAction(
                        recovery, seq, event.kind, gateway_id, True,
                    ))
                    seq += 1
                continue
            if event.kind is ChurnKind.GATEWAY_JOIN:
                actions.append(ChurnAction(event.at_s, seq, event.kind, event.gateway_id, True))
            elif event.kind is ChurnKind.GATEWAY_LEAVE:
                actions.append(ChurnAction(event.at_s, seq, event.kind, event.gateway_id, False))
            elif event.kind is ChurnKind.GATEWAY_FAIL:
                actions.append(ChurnAction(event.at_s, seq, event.kind, event.gateway_id, False))
                seq += 1
                actions.append(ChurnAction(
                    event.at_s + (event.duration_s or 0.0), seq, event.kind,
                    event.gateway_id, True,
                ))
            elif event.kind is ChurnKind.CLIENT_JOIN:
                actions.append(ChurnAction(event.at_s, seq, event.kind, event.client_id, True))
            else:
                actions.append(ChurnAction(event.at_s, seq, event.kind, event.client_id, False))
            seq += 1
        actions.sort(key=lambda action: (action.at_s, action.seq))
        return actions

    def validate_against(self, num_gateways: int, client_ids: Sequence[int]) -> None:
        """Check every referenced entity exists in the scenario."""
        for gateway_id in self.gateway_ids():
            if not 0 <= gateway_id < num_gateways:
                raise ValueError(
                    f"churn timeline references gateway {gateway_id}, but the "
                    f"scenario has gateways 0..{num_gateways - 1}"
                )
        known_clients = set(client_ids)
        for client_id in self.client_ids():
            if client_id not in known_clients:
                raise ValueError(
                    f"churn timeline references unknown client {client_id}"
                )

    def canonical(self) -> List[List[object]]:
        """Digest-stable rendering of the whole timeline."""
        return [event.canonical() for event in self.events]


#: The static deployment of the paper: nothing ever joins or leaves.
EMPTY_TIMELINE = ChurnTimeline()


# ----------------------------------------------------------------------
# Named churn patterns: deterministic builders parameterised by the
# scenario's population, duration and seed.  The sweep catalog inlines the
# *built* timeline into the run digest, so pattern edits invalidate caches
# according to the physics, not the pattern name.
# ----------------------------------------------------------------------
def _pick(rng, population: int, count: int) -> List[int]:
    return sorted(int(x) for x in rng.choice(population, size=count, replace=False))


def _midday_dropout(num_gateways, num_clients, duration_s, seed) -> ChurnTimeline:
    """A quarter of the gateways fail transiently around midday, staggered."""
    import numpy as np

    rng = np.random.default_rng(seed + 101)
    victims = _pick(rng, num_gateways, max(1, num_gateways // 4))
    start = duration_s / 3.0
    outage = max(600.0, duration_s / 8.0)
    return ChurnTimeline(tuple(
        ChurnEvent(
            at_s=start + 120.0 * index,
            kind=ChurnKind.GATEWAY_FAIL,
            gateway_id=gateway_id,
            duration_s=outage,
        )
        for index, gateway_id in enumerate(victims)
    ))


def _evening_expansion(num_gateways, num_clients, duration_s, seed) -> ChurnTimeline:
    """A staged build-out: new gateways power on at half-trace, then new
    subscribers arrive shortly after."""
    import numpy as np

    rng = np.random.default_rng(seed + 211)
    new_gateways = _pick(rng, num_gateways, max(1, num_gateways // 5))
    new_clients = _pick(rng, num_clients, max(1, num_clients // 10))
    events = [
        ChurnEvent(at_s=duration_s * 0.5, kind=ChurnKind.GATEWAY_JOIN, gateway_id=g)
        for g in new_gateways
    ] + [
        ChurnEvent(at_s=duration_s * 0.55, kind=ChurnKind.CLIENT_JOIN, client_id=c)
        for c in new_clients
    ]
    return ChurnTimeline(tuple(events))


def _subscriber_churn(num_gateways, num_clients, duration_s, seed) -> ChurnTimeline:
    """Subscribers cancel mid-trace while a disjoint batch signs up, plus a
    single gateway decommissioning."""
    import numpy as np

    rng = np.random.default_rng(seed + 307)
    shuffled = [int(x) for x in rng.permutation(num_clients)]
    leavers = sorted(shuffled[: max(1, num_clients * 15 // 100)])
    joiners = sorted(shuffled[len(leavers): len(leavers) + max(1, num_clients // 10)])
    decommissioned = int(rng.integers(num_gateways))
    events = [
        ChurnEvent(at_s=duration_s * 0.4, kind=ChurnKind.CLIENT_LEAVE, client_id=c)
        for c in leavers
    ] + [
        ChurnEvent(at_s=duration_s * 0.5, kind=ChurnKind.CLIENT_JOIN, client_id=c)
        for c in joiners
    ] + [
        ChurnEvent(
            at_s=duration_s * 0.6, kind=ChurnKind.GATEWAY_LEAVE,
            gateway_id=decommissioned,
        )
    ]
    return ChurnTimeline(tuple(events))


def _dslam_outage(num_gateways, num_clients, duration_s, seed) -> ChurnTimeline:
    """One correlated whole-DSLAM outage: power fails at a seeded instant
    in the middle third of the trace and every gateway recovers together
    after the repair window."""
    import numpy as np

    rng = np.random.default_rng(seed + 401)
    start = duration_s * (1.0 / 3.0 + float(rng.uniform(0.0, 1.0)) / 6.0)
    outage = max(900.0, duration_s / 8.0)
    return ChurnTimeline((
        ChurnEvent(at_s=start, kind=ChurnKind.DSLAM_FAIL, duration_s=outage),
    ))


#: Named pattern builders: ``f(num_gateways, num_clients, duration_s, seed)``.
CHURN_PATTERNS: Dict[str, object] = {
    "none": lambda num_gateways, num_clients, duration_s, seed: EMPTY_TIMELINE,
    "midday-dropout": _midday_dropout,
    "evening-expansion": _evening_expansion,
    "subscriber-churn": _subscriber_churn,
    "dslam-outage": _dslam_outage,
}


def build_churn(
    name: str, *, num_gateways: int, num_clients: int, duration_s: float, seed: int
) -> ChurnTimeline:
    """Materialise a named churn pattern for a concrete deployment."""
    try:
        builder = CHURN_PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown churn pattern {name!r}; known: {', '.join(CHURN_PATTERNS)}"
        ) from None
    return builder(num_gateways, num_clients, duration_s, seed)


def churn_pattern_names() -> List[str]:
    """Registered churn pattern names, in registration order."""
    return list(CHURN_PATTERNS)
