"""Fig. 14: crosstalk speedup as lines in the bundle are powered off."""

from repro.analysis import figures


def test_bench_fig14_crosstalk(benchmark):
    data = benchmark.pedantic(figures.figure14, kwargs=dict(num_sequences=3), rounds=1, iterations=1)
    print("\n=== Fig. 14: average per-line speedup vs. inactive lines ===")
    for label, curve in data.items():
        series = ", ".join(
            f"{n}:{s:.1f}%" for n, s in zip(curve["inactive_lines"], curve["mean_speedup_percent"])
        )
        print(f"{label:44s} baseline={curve['baseline_mbps']:.1f} Mbps  {series}")
    fixed62 = data["profile 62 Mbps; fixed loop length 600 m"]
    # Paper: ~1.1-1.2 % per deactivated line, ~13.6 % at half off, ~25 % at 75 % off.
    assert 38.0 <= fixed62["baseline_mbps"] <= 50.0
    at12 = fixed62["mean_speedup_percent"][fixed62["inactive_lines"].index(12)]
    at20 = fixed62["mean_speedup_percent"][fixed62["inactive_lines"].index(20)]
    assert 8.0 <= at12 <= 20.0
    assert at20 > at12
    fixed30 = data["profile 30 Mbps; fixed loop length 600 m"]
    assert 25.0 <= fixed30["baseline_mbps"] <= 33.0
