"""Fig. 5: probability that the l-th line card sleeps (Eq. 2 and simulation)."""

from repro.analysis import figures


def test_bench_fig5_kswitch_model(benchmark):
    data = benchmark.pedantic(
        figures.figure5,
        kwargs=dict(k_values=(2, 4, 8), m=24, p_values=(0.5, 0.25), monte_carlo_trials=2000),
        rounds=1, iterations=1,
    )
    print("\n=== Fig. 5: P(line card l sleeps), m = 24 modems/card ===")
    for key, entry in data.items():
        paper = " ".join(f"{v:.2f}" for v in entry["paper_eq2"])
        exact = " ".join(f"{v:.2f}" for v in entry["exact"])
        monte = " ".join(f"{v:.2f}" for v in entry["monte_carlo"])
        print(f"{key:12s} eq2  : {paper}")
        print(f"{'':12s} exact: {exact}")
        print(f"{'':12s} sim  : {monte}")
    # Paper: even small switches give the first card a high chance to sleep
    # when half of the modems are off, and the chance decreases with l.
    entry = data["p=0.5 k=8"]
    assert entry["paper_eq2"][0] > 0.85
    assert entry["exact"][0] > 0.9
    assert entry["exact"][0] > entry["exact"][3]
    # Monte-Carlo packing agrees with the exact expression.
    for sim, exact in zip(entry["monte_carlo"], entry["exact"]):
        assert abs(sim - exact) < 0.06
