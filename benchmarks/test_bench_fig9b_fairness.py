"""Fig. 9b: CDF of the per-gateway online-time variation vs. SoI (fairness)."""

import numpy as np

from repro.analysis import figures


def test_bench_fig9b_fairness(benchmark, comparison):
    data = benchmark.pedantic(figures.figure9b, args=(comparison,), rounds=1, iterations=1)
    print("\n=== Fig. 9b: gateway online-time variation vs. SoI ===")
    for name in ("BH2+k-switch", "BH2 w/o backup+k-switch"):
        values = np.asarray(data[name]["variation_percent"])
        fully_off = float(np.mean(values <= -99.9)) if values.size else 0.0
        increased = float(np.mean(values > 0.0)) if values.size else 0.0
        print(f"{name:28s} fully sleeping={100 * fully_off:5.1f}%  online-time increased={100 * increased:5.1f}%")
    # Paper: BH2 sends a sizeable fraction of gateways fully to sleep while a
    # minority see their online time increase (they serve the hitch-hikers).
    bh2 = np.asarray(data["BH2+k-switch"]["variation_percent"])
    assert np.mean(bh2 < 0) > 0.3
