"""Fig. 3: average downlink utilisation of the wireless trace on 6 Mbps links."""

from repro.analysis import figures
from repro.traces.synthetic import generate_crawdad_like_trace


def test_bench_fig3_ap_utilization(benchmark):
    trace = generate_crawdad_like_trace()
    data = benchmark.pedantic(figures.figure3, args=(trace,), rounds=1, iterations=1)
    print("\n=== Fig. 3: average AP downlink utilisation (percent of 6 Mbps) ===")
    for hour in range(0, 24, 2):
        print(f"{hour:4d}h  {data['avg_utilization_percent'][hour]:6.2f}%")
    peak = max(data["avg_utilization_percent"])
    trough = min(data["avg_utilization_percent"][2:7])
    # Paper: a pronounced office-hours peak of a few percent with a very
    # quiet early morning.
    assert 3.0 <= peak <= 12.0
    assert trough < 0.2 * peak
