"""Sec. 5.4 headline numbers: savings margin, achieved savings, extrapolation."""

from repro.analysis import figures


def test_bench_summary_savings(benchmark, comparison):
    data = benchmark.pedantic(figures.summary_savings, args=(comparison,), rounds=1, iterations=1)
    print("\n=== Sec. 5.4 summary ===")
    print(f"savings margin (Optimal)        : {data['margin_percent']:5.1f}%   (paper: ~80%)")
    print(f"BH2 + k-switch average savings  : {data['bh2_kswitch_percent']:5.1f}%   (paper: ~66%)")
    print(f"ISP share of BH2+k savings      : {data['isp_share_of_savings_percent']:5.1f}%   (paper: ~1/3)")
    print(f"world-wide extrapolation        : {data['world_wide_twh_per_year']:5.1f} TWh/yr (paper: ~33)")
    assert data["margin_percent"] > 65.0
    assert data["bh2_kswitch_percent"] > 35.0
    assert data["margin_percent"] > data["bh2_kswitch_percent"]
    assert 10.0 <= data["world_wide_twh_per_year"] <= 60.0
