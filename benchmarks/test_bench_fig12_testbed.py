"""Fig. 12: testbed replay — online APs under BH2 vs. SoI (15:00-15:30)."""

from repro.analysis import figures
from repro.traces.synthetic import generate_crawdad_like_trace


def test_bench_fig12_testbed(benchmark):
    trace = generate_crawdad_like_trace()
    data = benchmark.pedantic(figures.figure12, args=(trace,), rounds=1, iterations=1)
    print("\n=== Fig. 12: online APs in the 9-gateway testbed replay ===")
    for name, series in data.items():
        sleeping = 9 - series["mean_online"]
        print(f"{name:4s} mean online={series['mean_online']:.2f}  mean sleeping={sleeping:.2f} "
              f"(paper: BH2 sleeps 5.46, SoI sleeps 3.72)")
    # Paper: BH2 puts more of the 9 gateways to sleep than plain SoI.
    assert data["BH2"]["mean_online"] <= data["SoI"]["mean_online"] + 0.3
