"""Fig. 10: impact of gateway density on the number of online gateways."""

from repro.analysis import figures


def test_bench_fig10_density(benchmark, evaluation_scale):
    scale = figures.EvaluationScale(
        num_clients=evaluation_scale.num_clients,
        num_gateways=evaluation_scale.num_gateways,
        duration_s=min(evaluation_scale.duration_s, 24 * 3600.0),
        runs_per_scheme=1,
        step_s=max(evaluation_scale.step_s, 2.0),
        seed=evaluation_scale.seed,
    )
    densities = (1, 2, 4, 6, 8, 10)
    data = benchmark.pedantic(
        figures.figure10, kwargs=dict(densities=densities, scale=scale), rounds=1, iterations=1
    )
    print("\n=== Fig. 10: mean online gateways at peak vs. gateway density ===")
    for density, online in zip(data["mean_available_gateways"], data["online_gateways"]):
        print(f"density {density:4.0f}: {online:5.1f} online gateways")
    online = data["online_gateways"]
    # Paper: more neighbours in range -> fewer gateways need to stay online.
    # (With one backup gateway required, density 2 leaves little room to
    # move, so the paper-level 35 % drop appears from density ~4 onward.)
    assert online[-1] < online[0]
    assert min(online[2:]) < 0.9 * online[0]
