"""Fig. 4: fraction of the peak-hour idle time per inter-packet-gap bin."""

from repro.analysis import figures
from repro.traces.synthetic import generate_crawdad_like_trace


def test_bench_fig4_interpacket_gaps(benchmark):
    trace = generate_crawdad_like_trace()
    data = benchmark.pedantic(figures.figure4, args=(trace,), rounds=1, iterations=1)
    print(f"\n=== Fig. 4: idle-time share per gap bin (peak hour = {data['hour']}h) ===")
    for label, percent in zip(data["labels"], data["percent_of_idle_time"]):
        if percent > 0.5:
            print(f"{label:>6s}s : {percent:5.1f}%")
    print(f"idle time in gaps < 60 s: {100 * data['fraction_below_60s']:.1f}%  (paper: ~82%)")
    # Paper: the bulk of the idle time is made of gaps shorter than the 60 s
    # idle timeout, which is what defeats plain Sleep-on-Idle.
    assert data["fraction_below_60s"] > 0.6
