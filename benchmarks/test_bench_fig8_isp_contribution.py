"""Fig. 8: share of the total savings contributed by the ISP side."""

from repro.analysis import figures
from benchmarks.conftest import print_series


def test_bench_fig8_isp_contribution(benchmark, comparison):
    data = benchmark.pedantic(figures.figure8, args=(comparison,), rounds=1, iterations=1)
    print_series("Fig. 8: ISP share of total savings [%]", data, "hours", "isp_share_percent")
    shares = {
        name: 100 * comparison.first(name).mean_isp_share_of_savings()
        for name in comparison.scheme_names if name != "no-sleep"
    }
    print("\nday-average ISP share of savings:")
    for name, share in shares.items():
        print(f"  {name:28s} {share:5.1f}%")
    # Paper: switching makes the ISP side a substantial part (tens of percent)
    # of the savings for Optimal and BH2+k-switch; plain SoI saves almost
    # nothing on the ISP side beyond the terminating modems.
    assert shares["Optimal"] > 20.0
    assert shares["BH2+k-switch"] > 15.0
    assert shares["BH2+k-switch"] > shares["SoI"]
