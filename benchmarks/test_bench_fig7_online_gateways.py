"""Fig. 7: number of online gateways over the day, per aggregation scheme."""

from repro.analysis import figures
from benchmarks.conftest import print_series


def test_bench_fig7_online_gateways(benchmark, comparison, scenario):
    data = benchmark.pedantic(figures.figure7, args=(comparison,), rounds=1, iterations=1)
    print_series("Fig. 7: online gateways", data, "hours", "online_gateways")
    peak = (11 * 3600.0, 19 * 3600.0)
    soi_peak = comparison.mean_online_gateways("SoI", *peak)
    bh2_peak = comparison.mean_online_gateways("BH2+k-switch", *peak)
    bh2_nb_peak = comparison.mean_online_gateways("BH2 w/o backup+k-switch", *peak)
    optimal_peak = comparison.mean_online_gateways("Optimal", *peak)
    print(f"\npeak-hours online gateways (of {scenario.num_gateways}): "
          f"SoI={soi_peak:.1f} BH2={bh2_peak:.1f} BH2 w/o backup={bh2_nb_peak:.1f} Optimal={optimal_peak:.1f}")
    # Paper: SoI powers on nearly every gateway at peak; BH2 tracks the
    # optimal far more closely; the backup costs little.
    assert soi_peak > 0.75 * scenario.num_gateways
    assert bh2_peak < 0.8 * soi_peak
    assert optimal_peak <= bh2_peak
