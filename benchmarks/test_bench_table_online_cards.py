"""Sec. 5.2.3: average number of online line cards during peak hours."""

from repro.analysis import figures


def test_bench_table_online_cards(benchmark, comparison, scenario):
    table = benchmark.pedantic(figures.table_online_cards, args=(comparison,), rounds=1, iterations=1)
    print(f"\n=== Online line cards during peak hours (of {scenario.dslam.num_line_cards}) ===")
    paper = {
        "Optimal": 1.0, "BH2+full-switch": 2.0, "BH2+k-switch": 2.88,
        "SoI+full-switch": 3.0, "SoI+k-switch": 3.74, "SoI": 3.99,
    }
    for name, cards in sorted(table.items(), key=lambda kv: kv[1]):
        reference = f"(paper: {paper[name]:.2f})" if name in paper else ""
        print(f"{name:28s} {cards:5.2f} {reference}")
    # Paper ordering: optimal <= BH2+full <= BH2+k <= SoI+full <= SoI+k <= SoI.
    assert table["Optimal"] <= table["BH2+k-switch"] + 0.05
    assert table["BH2+k-switch"] <= table["SoI+k-switch"] + 0.05
    assert table["SoI+k-switch"] <= table["SoI"] + 0.05
    assert table["BH2+full-switch"] <= table["BH2+k-switch"] + 0.05
