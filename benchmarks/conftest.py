"""Shared fixtures for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's tables or
figures and prints the same rows/series the paper reports.  The simulation
benchmarks share a single scheme comparison run over a scaled-down (but
structurally identical) scenario so the whole suite finishes in a few
minutes; pass ``--paper-scale`` to run the full 272-client / 40-gateway /
10-repetition setup of the paper.
"""

import pytest

from repro.analysis import figures
from repro.core.schemes import (
    bh2_full_switch,
    bh2_kswitch,
    bh2_no_backup_kswitch,
    no_sleep,
    optimal,
    soi,
    soi_full_switch,
    soi_kswitch,
)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the simulation benchmarks at the paper's full scale "
        "(272 clients, 40 gateways, 24 h, 10 runs per scheme)",
    )


@pytest.fixture(scope="session")
def evaluation_scale(request):
    """The scenario scale used by the simulation benchmarks."""
    if request.config.getoption("--paper-scale"):
        return figures.full_scale()
    # Scaled-down default: half the gateways and clients, full 24 h day.
    return figures.EvaluationScale(
        num_clients=136, num_gateways=20, duration_s=24 * 3600.0,
        runs_per_scheme=1, step_s=2.0, seed=2011,
    )


@pytest.fixture(scope="session")
def scenario(evaluation_scale):
    """The evaluation scenario shared by the Sec. 5 benchmarks."""
    return figures.build_scenario(evaluation_scale)


@pytest.fixture(scope="session")
def comparison(evaluation_scale, scenario):
    """The scheme comparison behind Figs. 6-9 and the line-card table."""
    schemes = [
        no_sleep(), soi(), soi_kswitch(), soi_full_switch(),
        bh2_kswitch(), bh2_no_backup_kswitch(), bh2_full_switch(), optimal(),
    ]
    return figures.run_evaluation(scale=evaluation_scale, schemes=schemes, scenario=scenario)


def print_series(title, series, x_key, y_key, stride=60):
    """Print a figure's series in a compact, paper-style form."""
    print(f"\n=== {title} ===")
    for name, data in series.items():
        xs = data[x_key]
        ys = data[y_key]
        points = ", ".join(
            f"{x:.0f}h:{y:.1f}" for x, y in list(zip(xs, ys))[::stride]
        )
        print(f"{name:28s} {points}")
