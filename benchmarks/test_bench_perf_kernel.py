"""Perf benchmark: vectorized kernel vs. the preserved seed kernel.

Times every scheme of the evaluation over the default benchmark scenario
(136 clients / 20 gateways / 24 h, the paper-protocol 1 s step) with both
the seed kernel (:mod:`repro.simulation.reference_kernel`) and the
event-aware kernel (:mod:`repro.simulation.simulator`), verifies that the
scheme-comparison metrics agree within 1e-6, and writes the measurements to
``BENCH_perf.json`` in the repository root so the perf trajectory is
tracked across PRs.

Read the output as: ``speedup`` = seed wall-clock / new wall-clock per
scheme, ``aggregate.speedup`` over the whole 8-scheme comparison, and
``sim_hours_per_second`` = simulated hours per wall-clock second with the
new kernel.
"""

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import figures
from repro.core.schemes import all_schemes
from repro.simulation.reference_kernel import run_scheme_reference
from repro.simulation.runner import run_scheme

#: The default benchmark scenario: half the paper's population over the
#: full day at the paper protocol's 1 s step (`EvaluationScale` defaults).
BENCH_CLIENTS = 136
BENCH_GATEWAYS = 20
BENCH_DURATION_S = 24 * 3600.0
BENCH_STEP_S = 1.0
BENCH_SEED = 2011
RUN_SEED = 1

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def _git_sha():
    """The benchmarked commit's short sha; None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, check=False,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


@pytest.fixture(scope="module")
def bench_scenario(request):
    scale = figures.EvaluationScale(
        num_clients=BENCH_CLIENTS,
        num_gateways=BENCH_GATEWAYS,
        duration_s=BENCH_DURATION_S,
        runs_per_scheme=1,
        step_s=BENCH_STEP_S,
        seed=BENCH_SEED,
    )
    return figures.build_scenario(scale)


def _timed(runner, scenario, scheme):
    start = time.perf_counter()
    result = runner(scenario, scheme, seed=RUN_SEED, step_s=BENCH_STEP_S)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_bench_perf_kernel(bench_scenario):
    per_scheme = {}
    total_reference = 0.0
    total_new = 0.0
    sim_hours = BENCH_DURATION_S / 3600.0

    for name, scheme in all_schemes().items():
        reference, reference_s = _timed(run_scheme_reference, bench_scenario, scheme)
        result, new_s = _timed(run_scheme, bench_scenario, scheme)
        total_reference += reference_s
        total_new += new_s

        savings_delta = abs(reference.mean_savings() - result.mean_savings())
        online_delta = abs(
            reference.mean_online_gateways() - result.mean_online_gateways()
        )
        # Acceptance: scheme-comparison metrics unchanged within 1e-6.
        assert savings_delta < 1e-6, f"{name}: mean_savings moved by {savings_delta}"
        assert online_delta < 1e-6, f"{name}: mean_online_gateways moved by {online_delta}"
        # The kernel is designed to be trajectory-exact, which is stronger:
        assert np.array_equal(reference.online_gateways, result.online_gateways)

        per_scheme[name] = {
            "seed_kernel_s": round(reference_s, 4),
            "kernel_s": round(new_s, 4),
            "speedup": round(reference_s / new_s, 2),
            "sim_hours_per_second": round(sim_hours / new_s, 2),
            "steps_seed": reference.steps_taken,
            "steps_kernel": result.steps_taken,
            "flows_served": len(result.flow_records),
            "mean_savings": result.mean_savings(),
            "mean_online_gateways": result.mean_online_gateways(),
            "savings_delta_vs_seed": savings_delta,
            "online_gateways_delta_vs_seed": online_delta,
        }

    aggregate_speedup = total_reference / total_new
    payload = {
        # Consumed by the perf regression baseline (repro.regress): bump
        # when the payload layout changes so stale baselines fail loudly.
        "schema_version": 1,
        "benchmark": {
            "num_clients": BENCH_CLIENTS,
            "num_gateways": BENCH_GATEWAYS,
            "duration_s": BENCH_DURATION_S,
            "step_s": BENCH_STEP_S,
            "scenario_seed": BENCH_SEED,
            "run_seed": RUN_SEED,
            "schemes": len(per_scheme),
        },
        # Provenance: strings are ignored by the perf baseline loader
        # (it keeps only numeric cells), so adding fields here cannot
        # break an already-committed baselines/perf.json.
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "git_sha": _git_sha(),
        },
        "aggregate": {
            "seed_kernel_s": round(total_reference, 3),
            "kernel_s": round(total_new, 3),
            "speedup": round(aggregate_speedup, 2),
            "sim_hours_per_second": round(len(per_scheme) * sim_hours / total_new, 2),
        },
        "per_scheme": per_scheme,
    }
    # sort_keys pins both block order and key order, so re-running the
    # benchmark produces a stable file and perf commits diff only where a
    # number actually moved.
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Regression floor: the kernel must stay well ahead of the seed.  The
    # headline measurement on the reference machine is recorded in the JSON
    # (≥5x); the assertion is looser so CI noise cannot flake the build.
    assert aggregate_speedup >= 2.0, (
        f"kernel speedup regressed to {aggregate_speedup:.2f}x "
        f"(see {OUTPUT_PATH.name})"
    )


def test_bench_batch_sweep(tmp_path):
    """Batched (``--batch``) vs serial scalar-kernel sweep throughput.

    Sweeps the smoke family's vec-eligible scheme lanes (the schemes the
    batched mode actually vectorizes/collapses — BH2 rides the identical
    scalar pool in both modes and would only add an equal constant to
    both sides) and amends ``BENCH_perf.json`` — written by
    :func:`test_bench_perf_kernel` just above — with
    ``aggregate.batch_sweep_speedup`` plus a ``batch`` provenance block,
    so the perf gate tracks the batched path alongside the kernel
    speedup.  Each mode is timed best-of-3 against a fresh store: the
    sweep is part store I/O, and a single noisy trial on a loaded CI
    runner should not masquerade as a regression.
    """
    from repro.core.schemes import AggregationKind, standard_schemes
    from repro.sweep.engine import SweepConfig, run_sweep
    from repro.sweep.store import ResultStore

    schemes = [
        s for s in standard_schemes()
        if s.aggregation is AggregationKind.NONE
        and not s.watt_aware and not s.idealized_transitions
    ]
    runs_per_scheme = 128
    trials = 3
    config = SweepConfig(runs_per_scheme=runs_per_scheme)

    def timed_sweep(mode, batch):
        best_s, result = float("inf"), None
        for trial in range(trials):
            store = ResultStore(tmp_path / f"{mode}-{trial}")
            start = time.perf_counter()
            result = run_sweep(
                family_names=["smoke"], schemes=schemes, config=config,
                store=store, batch=batch,
            )
            best_s = min(best_s, time.perf_counter() - start)
        return result, best_s

    scalar, scalar_s = timed_sweep("scalar", batch=False)
    batched, batch_s = timed_sweep("batch", batch=True)

    assert set(scalar.records) == set(batched.records)
    assert not batched.failures and batched.peeled == 0
    assert batched.batched == len(schemes)
    batch_speedup = scalar_s / batch_s

    payload = json.loads(OUTPUT_PATH.read_text()) if OUTPUT_PATH.exists() else {
        "schema_version": 1, "aggregate": {}, "per_scheme": {},
    }
    payload["aggregate"]["batch_sweep_speedup"] = round(batch_speedup, 2)
    # Provenance only: the perf baseline loader keeps numeric cells from
    # the aggregate/per_scheme blocks, so this block is never gated.
    payload["batch"] = {
        "families": ["smoke"],
        "schemes": [s.name for s in schemes],
        "runs_per_scheme": runs_per_scheme,
        "trials": trials,
        "cells": len(batched.records),
        "batched_lanes": batched.batched,
        "collapsed_replicas": batched.collapsed,
        "scalar_sweep_s": round(scalar_s, 3),
        "batch_sweep_s": round(batch_s, 3),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Regression floor: the headline measurement (≥4x on the reference
    # machine) is recorded in the JSON; the assertion is looser so CI
    # noise cannot flake the build.
    assert batch_speedup >= 3.0, (
        f"batched sweep speedup regressed to {batch_speedup:.2f}x "
        f"(see {OUTPUT_PATH.name})"
    )


def test_bench_perf_smoke_metrics():
    """Quick cross-kernel smoke check on a small scenario (CI-friendly)."""
    scale = figures.EvaluationScale(
        num_clients=40, num_gateways=8, duration_s=3600.0, step_s=2.0, seed=11
    )
    scenario = figures.build_scenario(scale)
    for name, scheme in all_schemes().items():
        reference = run_scheme_reference(scenario, scheme, seed=2, step_s=2.0)
        result = run_scheme(scenario, scheme, seed=2, step_s=2.0)
        assert abs(reference.mean_savings() - result.mean_savings()) < 1e-6, name
