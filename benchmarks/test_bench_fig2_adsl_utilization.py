"""Fig. 2: daily average and median utilisation of a 10 K ADSL population."""

from repro.analysis import figures


def test_bench_fig2_adsl_utilization(benchmark):
    data = benchmark.pedantic(figures.figure2, rounds=1, iterations=1)
    print("\n=== Fig. 2: ADSL utilisation (percent of plan speed) ===")
    print("hour  avg_down  med_down  avg_up  med_up")
    for hour in range(0, 24, 2):
        print(f"{hour:4d}  {data['avg_downlink_percent'][hour]:8.2f}  "
              f"{data['median_downlink_percent'][hour]:8.4f}  "
              f"{data['avg_uplink_percent'][hour]:6.2f}  "
              f"{data['median_uplink_percent'][hour]:6.4f}")
    # Paper: the average utilisation does not exceed ~9 % even at the peak
    # hour, and the median is far below the average.
    assert max(data["avg_downlink_percent"]) < 12.0
    assert max(data["median_downlink_percent"]) < max(data["avg_downlink_percent"]) / 5.0
