"""Fig. 6: energy savings vs. no-sleep over the day, per scheme."""

from repro.analysis import figures
from benchmarks.conftest import print_series


def test_bench_fig6_energy_savings(benchmark, comparison):
    data = benchmark.pedantic(figures.figure6, args=(comparison,), rounds=1, iterations=1)
    print_series("Fig. 6: energy savings vs. no-sleep [%]", data, "hours", "savings_percent")
    peak = (11 * 3600.0, 19 * 3600.0)
    summary = {name: 100 * comparison.mean_savings(name) for name in comparison.scheme_names}
    peak_summary = {name: 100 * comparison.mean_savings(name, *peak) for name in comparison.scheme_names}
    print("\nscheme                        day-average   peak-hours")
    for name in summary:
        print(f"{name:28s} {summary[name]:10.1f}%  {peak_summary[name]:9.1f}%")
    # Paper shape: Optimal ~80 % throughout; BH2+k-switch well above SoI(+k)
    # at peak; SoI collapses below 20 % at peak.
    assert summary["Optimal"] > 65.0
    assert peak_summary["SoI"] < 25.0
    assert peak_summary["BH2+k-switch"] > peak_summary["SoI+k-switch"]
    assert summary["BH2+k-switch"] > summary["SoI"]
