"""Fig. 15 (appendix): attenuation distribution across DSLAM line cards."""

from repro.analysis import figures


def test_bench_fig15_attenuation(benchmark):
    data = benchmark.pedantic(figures.figure15, rounds=1, iterations=1)
    print("\n=== Fig. 15: per-line-card attenuation distributions ===")
    for card, mean, std, quartiles in zip(
        data["card_ids"], data["mean_db"], data["std_db"], data["quartiles_db"]
    ):
        print(f"card {card:2d}: mean={mean:5.1f} dB  std={std:5.1f} dB  quartiles={[round(q, 1) for q in quartiles]}")
    # Paper: all cards show essentially the same Gaussian distribution, which
    # justifies the random assignment of gateways to DSLAM ports.
    assert data["means_are_similar"]
    assert len(data["card_ids"]) == 14
