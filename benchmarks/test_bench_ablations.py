"""Ablation benches for the design choices called out in DESIGN.md."""

from repro.access.kswitch import expected_sleeping_cards
from repro.core.bh2 import BH2Config
from repro.core.schemes import bh2_kswitch
from repro.simulation.runner import run_scheme


def test_bench_ablation_kswitch_size(benchmark):
    """Expected sleeping cards per batch as the switch size k grows (m=24)."""

    def sweep():
        return {k: expected_sleeping_cards(k, m=24, p=0.5) / k for k in (1, 2, 4, 8)}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Ablation: fraction of cards sleeping per batch (p=0.5, m=24) ===")
    for k, fraction in data.items():
        print(f"k={k}: {100 * fraction:5.1f}% of the batch can sleep")
    # Bigger switches help, with diminishing returns (the paper's argument for k=4/8).
    assert data[2] > data[1]
    assert data[4] > data[2]
    assert data[8] >= data[4] * 0.95


def test_bench_ablation_bh2_candidate_filter(benchmark, scenario, evaluation_scale):
    """Literal (strict) candidate filter of Sec. 3.1 vs. the bootstrap-friendly default."""

    def run_both():
        relaxed = run_scheme(scenario, bh2_kswitch(), seed=evaluation_scale.seed,
                             step_s=evaluation_scale.step_s)
        strict_scheme = bh2_kswitch().with_name("BH2 strict candidates")
        object.__setattr__(strict_scheme, "bh2", BH2Config().strict_paper_variant())
        strict = run_scheme(scenario, strict_scheme, seed=evaluation_scale.seed,
                            step_s=evaluation_scale.step_s)
        return {"default": relaxed.mean_savings(), "strict": strict.mean_savings()}

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n=== Ablation: BH2 candidate filter ===")
    print(f"default (candidates carry some traffic) : {100 * data['default']:.1f}% savings")
    print(f"strict  (candidates above low threshold): {100 * data['strict']:.1f}% savings")
    # The strict literal reading cannot bootstrap aggregation at these loads,
    # which is exactly why the default interpretation is used (see DESIGN.md).
    assert data["default"] >= data["strict"] - 0.02
