"""Fig. 9a: CDF of the increase in flow completion time vs. no-sleep."""

import numpy as np

from repro.analysis import figures


def test_bench_fig9a_completion_time(benchmark, comparison):
    data = benchmark.pedantic(figures.figure9a, args=(comparison,), rounds=1, iterations=1)
    print("\n=== Fig. 9a: flow completion time increase vs. no-sleep ===")
    for name, series in data.items():
        values = np.asarray(series["variation_percent"])
        affected = series["fraction_affected"]
        p99 = np.percentile(values, 99) if values.size else 0.0
        print(f"{name:28s} affected={100 * affected:5.1f}%  p99 increase={p99:7.1f}%")
    # Paper: only a small fraction of flows are affected, and BH2 keeps the
    # affected fraction small (few percent for BH2, <10 % for SoI).
    assert data["SoI"]["fraction_affected"] < 0.35
    assert data["BH2+k-switch"]["fraction_affected"] < 0.35
