"""Legacy setup shim.

Kept so that ``pip install -e . --no-use-pep517`` works in fully offline
environments where the ``wheel`` package (needed for PEP 660 editable
installs) is unavailable.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
